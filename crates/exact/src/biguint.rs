//! Unsigned arbitrary-precision integers.
//!
//! Representation: little-endian `u64` limbs with the invariant that the
//! highest limb is nonzero (so zero is the empty limb vector). All
//! arithmetic is exact; operations that could go negative (`-`) panic, with
//! [`BigUint::checked_sub`] as the non-panicking alternative.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};

/// Limb count above which multiplication switches from schoolbook to
/// Karatsuba. Tuned coarsely; correctness does not depend on the value.
const KARATSUBA_THRESHOLD: usize = 32;

/// An arbitrary-precision unsigned integer.
///
/// ```
/// use hetero_exact::BigUint;
/// let a = BigUint::from(u64::MAX);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "340282366920938463426481119284349108225");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zeros.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Read-only view of the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// `true` iff the lowest bit is zero (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => (self.limbs.len() as u64) * 64 - u64::from(hi.leading_zeros()),
        }
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u128::from(self.limbs[0])),
            2 => Some(u128::from(self.limbs[0]) | (u128::from(self.limbs[1]) << 64)),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (round-to-nearest; huge values become
    /// `f64::INFINITY`).
    pub fn to_f64(&self) -> f64 {
        let bits = self.bits();
        if bits <= 64 {
            return self.to_u64().unwrap_or(0) as f64;
        }
        // Take the top 64 bits as the significand and scale by the exponent.
        let shift = bits - 64;
        // hetero-check: allow(expect) — after shifting right by bits−64 exactly 64 bits remain
        let top = (self >> shift).to_u64().expect("top 64 bits fit");
        (top as f64) * (shift as f64).exp2()
    }

    /// `self + other`.
    fn add_impl(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, limb) in long.iter().enumerate() {
            let s = u128::from(*limb) + u128::from(*short.get(i).unwrap_or(&0)) + u128::from(carry);
            out.push(s as u64);
            carry = (s >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`, or `None` when `other > self`.
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let rhs = u128::from(*other.limbs.get(i).unwrap_or(&0)) + u128::from(borrow);
            let lhs = u128::from(self.limbs[i]);
            if lhs >= rhs {
                out.push((lhs - rhs) as u64);
                borrow = 0;
            } else {
                out.push((lhs + (1u128 << 64) - rhs) as u64);
                borrow = 1;
            }
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// Schoolbook O(n·m) product.
    fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let t = u128::from(ai) * u128::from(bj) + u128::from(out[i + j]) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = u128::from(out[k]) + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        out
    }

    /// Karatsuba product on limb slices; falls back to schoolbook below the
    /// threshold. Returns unnormalized limbs.
    fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
            return Self::mul_schoolbook(a, b);
        }
        let half = a.len().max(b.len()) / 2;
        let (a0, a1) = a.split_at(half.min(a.len()));
        let (b0, b1) = b.split_at(half.min(b.len()));
        let a0 = BigUint::from_limbs(a0.to_vec());
        let a1 = BigUint::from_limbs(a1.to_vec());
        let b0 = BigUint::from_limbs(b0.to_vec());
        let b1 = BigUint::from_limbs(b1.to_vec());

        let z0 = BigUint::from_limbs(Self::mul_karatsuba(a0.limbs(), b0.limbs()));
        let z2 = BigUint::from_limbs(Self::mul_karatsuba(a1.limbs(), b1.limbs()));
        let sa = &a0 + &a1;
        let sb = &b0 + &b1;
        let z1 = BigUint::from_limbs(Self::mul_karatsuba(sa.limbs(), sb.limbs()));
        let z1 = z1
            .checked_sub(&z0)
            .and_then(|v| v.checked_sub(&z2))
            // hetero-check: allow(expect) — z1 = (a0+a1)(b0+b1) ≥ z0 + z2 holds algebraically for nonnegative limbs
            .expect("karatsuba middle term is nonnegative");

        // z2·2^(128·half) + z1·2^(64·half) + z0
        let mut acc = z0;
        acc += &z1.shl_limbs(half);
        acc += &z2.shl_limbs(2 * half);
        acc.limbs
    }

    /// Shift left by whole limbs (multiply by 2^(64·k)).
    fn shl_limbs(&self, k: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let mut limbs = vec![0u64; k];
        limbs.extend_from_slice(&self.limbs);
        BigUint { limbs }
    }

    /// Quotient and remainder: `(self / div, self % div)`.
    ///
    /// # Panics
    /// Panics when `div` is zero.
    pub fn divrem(&self, div: &Self) -> (Self, Self) {
        assert!(!div.is_zero(), "division by zero BigUint");
        match self.cmp(div) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if div.limbs.len() == 1 {
            let (q, r) = self.divrem_limb(div.limbs[0]);
            return (q, BigUint::from(r));
        }
        self.divrem_knuth(div)
    }

    /// Divide by a single nonzero limb.
    fn divrem_limb(&self, d: u64) -> (Self, u64) {
        debug_assert!(d != 0);
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | u128::from(self.limbs[i]);
            out[i] = (cur / u128::from(d)) as u64;
            rem = cur % u128::from(d);
        }
        (BigUint::from_limbs(out), rem as u64)
    }

    /// Knuth TAOCP vol. 2 Algorithm D (multi-limb division).
    fn divrem_knuth(&self, div: &Self) -> (Self, Self) {
        // Normalize: shift so the divisor's top limb has its high bit set.
        // hetero-check: allow(unwrap) — divrem rejects zero divisors before dispatching here, so a top limb exists
        let shift = div.limbs.last().unwrap().leading_zeros();
        let u = self << u64::from(shift); // dividend
        let v = div << u64::from(shift); // divisor
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs
        let vn = &v.limbs;
        let v_hi = vn[n - 1];
        let v_lo = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Trial quotient from the top two dividend limbs.
            let num = (u128::from(un[j + n]) << 64) | u128::from(un[j + n - 1]);
            let mut qhat = num / u128::from(v_hi);
            let mut rhat = num % u128::from(v_hi);
            // Refine so qhat is at most one too large.
            while qhat >> 64 != 0
                || qhat * u128::from(v_lo) > ((rhat << 64) | u128::from(un[j + n - 2]))
            {
                qhat -= 1;
                rhat += u128::from(v_hi);
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-subtract qhat·v from u[j..j+n].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * u128::from(vn[i]) + carry;
                carry = p >> 64;
                let sub = i128::from(un[j + i]) - i128::from(p as u64) + borrow;
                un[j + i] = sub as u64; // wrapping two's-complement keep
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = i128::from(un[j + n]) - i128::from(carry as u64) + borrow;
            un[j + n] = sub as u64;
            borrow = sub >> 64;

            q[j] = qhat as u64;
            if borrow != 0 {
                // qhat was one too large: add v back.
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let t = u128::from(un[j + i]) + u128::from(vn[i]) + carry;
                    un[j + i] = t as u64;
                    carry = t >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
        }

        let quot = BigUint::from_limbs(q);
        let rem = BigUint::from_limbs(un[..n].to_vec()) >> u64::from(shift);
        (quot, rem)
    }

    /// Greatest common divisor (binary GCD / Stein's algorithm).
    pub fn gcd(&self, other: &Self) -> Self {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let common = az.min(bz);
        a = &a >> az;
        b = &b >> bz;
        loop {
            debug_assert!(!a.is_even() && !b.is_even());
            if a < b {
                std::mem::swap(&mut a, &mut b);
            }
            // hetero-check: allow(expect) — the swap above establishes a ≥ b
            a = a.checked_sub(&b).expect("a >= b after swap");
            if a.is_zero() {
                return &b << common;
            }
            let tz = a.trailing_zeros();
            a = &a >> tz;
        }
    }

    /// Number of trailing zero bits.
    ///
    /// # Panics
    /// Panics on zero (which has no finite answer).
    pub fn trailing_zeros(&self) -> u64 {
        assert!(!self.is_zero(), "trailing_zeros of zero BigUint");
        let mut total = 0u64;
        for &l in &self.limbs {
            if l == 0 {
                total += 64;
            } else {
                return total + u64::from(l.trailing_zeros());
            }
        }
        // hetero-check: allow(panic) — the zero assert plus the no-trailing-zero-limb normalization invariant make this branch impossible
        unreachable!("normalized BigUint has a nonzero limb")
    }

    /// `self` raised to `exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> Self {
        let mut base = self.clone();
        let mut acc = Self::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Parses a decimal string (ASCII digits only, no sign).
    pub fn parse_decimal(s: &str) -> Option<Self> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut acc = Self::zero();
        // Consume 19 digits at a time (10^19 < 2^64).
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(19);
            let chunk = std::str::from_utf8(&bytes[i..i + take]).ok()?;
            let val: u64 = chunk.parse().ok()?;
            acc = &acc * &BigUint::from(10u64.pow(take as u32)) + &BigUint::from(val);
            i += take;
        }
        Some(acc)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $trait::$method(self, &rhs)
            }
        }
    };
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        self.add_impl(rhs)
    }
}
forward_binop!(Add, add);

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_impl(rhs);
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            // hetero-check: allow(expect) — the Sub operator documents a panic on underflow; checked_sub is the non-panicking API
            .expect("BigUint subtraction underflow")
    }
}
forward_binop!(Sub, sub);

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(BigUint::mul_karatsuba(&self.limbs, &rhs.limbs))
    }
}
forward_binop!(Mul, mul);

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.divrem(rhs).1
    }
}
forward_binop!(Rem, rem);

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: u64) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shl<u64> for BigUint {
    type Output = BigUint;
    fn shl(self, bits: u64) -> BigUint {
        &self << bits
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: u64) -> BigUint {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return BigUint::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<u64> for BigUint {
    type Output = BigUint;
    fn shr(self, bits: u64) -> BigUint {
        &self >> bits
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off 19 decimal digits at a time.
        let chunk = BigUint::from(10u64.pow(19));
        let mut rest = self.clone();
        let mut parts: Vec<u64> = Vec::new();
        while !rest.is_zero() {
            let (q, r) = rest.divrem(&chunk);
            // hetero-check: allow(expect) — divrem remainders are < 10^19, which fits in u64
            parts.push(r.to_u64().expect("remainder < 10^19"));
            rest = q;
        }
        // hetero-check: allow(unwrap) — the zero case returned early, so at least one chunk was pushed
        let mut s = parts.pop().unwrap().to_string();
        for p in parts.into_iter().rev() {
            s.push_str(&format!("{p:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_and_one_identities() {
        let z = BigUint::zero();
        let o = BigUint::one();
        assert!(z.is_zero());
        assert!(o.is_one());
        assert_eq!(&z + &o, o);
        assert_eq!(&o * &z, z);
        assert_eq!(o.bits(), 1);
        assert_eq!(z.bits(), 0);
    }

    #[test]
    fn addition_carries_across_limbs() {
        let a = big(u128::from(u64::MAX));
        let b = BigUint::one();
        let s = &a + &b;
        assert_eq!(s.to_u128(), Some(1u128 << 64));
        assert_eq!(s.limbs(), &[0, 1]);
    }

    #[test]
    fn subtraction_borrows_across_limbs() {
        let a = big(1u128 << 64);
        let b = BigUint::one();
        assert_eq!((&a - &b).to_u128(), Some(u128::from(u64::MAX)));
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = BigUint::one() - big(2);
    }

    #[test]
    fn multiplication_matches_u128() {
        let cases = [
            (0u128, 0u128),
            (1, u64::MAX as u128),
            (u64::MAX as u128, u64::MAX as u128),
            (123_456_789_012_345, 987_654_321_098_765),
        ];
        for (x, y) in cases {
            assert_eq!((big(x) * big(y)).to_u128(), x.checked_mul(y));
        }
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook() {
        // Operands well above the threshold.
        let a_limbs: Vec<u64> = (0..80)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1))
            .collect();
        let b_limbs: Vec<u64> = (0..75)
            .map(|i| 0xBF58_476D_1CE4_E5B9u64.wrapping_mul(i + 3))
            .collect();
        let a = BigUint::from_limbs(a_limbs.clone());
        let b = BigUint::from_limbs(b_limbs.clone());
        let fast = &a * &b;
        let slow = BigUint::from_limbs(BigUint::mul_schoolbook(&a_limbs, &b_limbs));
        assert_eq!(fast, slow);
    }

    #[test]
    fn division_small() {
        let (q, r) = big(1000).divrem(&big(7));
        assert_eq!(q, big(142));
        assert_eq!(r, big(6));
    }

    #[test]
    fn division_multi_limb_roundtrip() {
        let a = BigUint::from_limbs(vec![0xdead_beef, 0xcafe_babe, 0x1234_5678, 0x9abc]);
        let d = BigUint::from_limbs(vec![0xffff_ffff_0000_0001, 0x7]);
        let (q, r) = a.divrem(&d);
        assert!(r < d);
        assert_eq!(&q * &d + &r, a);
    }

    #[test]
    fn division_by_larger_is_zero() {
        let (q, r) = big(5).divrem(&big(100));
        assert!(q.is_zero());
        assert_eq!(r, big(5));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = big(5).divrem(&BigUint::zero());
    }

    #[test]
    fn shifts_roundtrip() {
        let a = BigUint::parse_decimal("123456789123456789123456789").unwrap();
        for bits in [0u64, 1, 63, 64, 65, 127, 200] {
            assert_eq!(&(&a << bits) >> bits, a);
        }
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        assert_eq!(BigUint::zero().gcd(&big(9)), big(9));
        assert_eq!(big(9).gcd(&BigUint::zero()), big(9));
        let a = big(2u128.pow(40) * 3 * 49);
        let b = big(2u128.pow(35) * 7 * 11);
        assert_eq!(a.gcd(&b), big(2u128.pow(35) * 7));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let mut acc = BigUint::one();
        let base = big(1_000_003);
        for e in 0..12u32 {
            assert_eq!(base.pow(e), acc);
            acc = &acc * &base;
        }
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
            "99999999999999999999999999999999999999999999999999",
        ] {
            let v = BigUint::parse_decimal(s).unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!(BigUint::parse_decimal("").is_none());
        assert!(BigUint::parse_decimal("12a").is_none());
        assert!(BigUint::parse_decimal("-5").is_none());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(big(2) < big(10));
        assert!(big(1u128 << 64) > big(u64::MAX as u128));
        assert_eq!(big(42).cmp(&big(42)), Ordering::Equal);
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(big(0).to_f64(), 0.0);
        assert_eq!(big(1 << 20).to_f64(), (1u64 << 20) as f64);
        let huge = BigUint::from(u64::MAX) * BigUint::from(u64::MAX);
        let expect = (u64::MAX as f64) * (u64::MAX as f64);
        assert!((huge.to_f64() - expect).abs() / expect < 1e-15);
    }

    #[test]
    fn trailing_zeros_counts_across_limbs() {
        assert_eq!(big(1).trailing_zeros(), 0);
        assert_eq!(big(8).trailing_zeros(), 3);
        assert_eq!((BigUint::one() << 130u64).trailing_zeros(), 130);
    }
}
