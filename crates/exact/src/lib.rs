//! # hetero-exact — exact arbitrary-precision arithmetic
//!
//! A from-scratch implementation of unsigned/signed big integers and exact
//! rational numbers, built for *verifying* the algebraic claims of
//! Rosenberg & Chiang's heterogeneity theory rather than for raw throughput.
//!
//! The X-measure of a heterogeneity profile,
//!
//! ```text
//! X(P) = Σ_i  1/(Bρ_i + A) · Π_{j<i} (Bρ_j + τδ)/(Bρ_j + A),
//! ```
//!
//! is a sum of products of `n` near-unity fractions. Comparing two X-values,
//! or evaluating the sign of the Theorem 4 discriminant
//! `(B²ψρ_iρ_j − Aτδ)·B·(1−ψ)(ρ_i−ρ_j)`, is a *sign decision on a tiny
//! difference of large products* — exactly the regime where f64 cancellation
//! produces wrong answers. Everything in this crate is exact: the only
//! rounding happens in the explicit [`Ratio::to_f64`] conversion.
//!
//! ## Layout
//!
//! * [`BigUint`] — magnitude, little-endian `u64` limbs, schoolbook +
//!   Karatsuba multiplication, Knuth Algorithm D division.
//! * [`BigInt`] — sign-magnitude wrapper.
//! * [`Ratio`] — always-reduced `BigInt / BigUint` rational with total order.
//!
//! ## Example
//!
//! ```
//! use hetero_exact::Ratio;
//!
//! let a = Ratio::from_frac(1, 3);
//! let b = Ratio::from_frac(1, 6);
//! assert_eq!(&a + &b, Ratio::from_frac(1, 2));
//! assert!(a > b);
//! assert_eq!((&a * &b).to_string(), "1/18");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
mod decimal;
mod ratio;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use ratio::{ParseRatioError, Ratio};
