//! Exact rational numbers.
//!
//! A [`Ratio`] is a fully reduced fraction `num / den` with `num: BigInt`,
//! `den: BigUint`, `den > 0`, and `gcd(|num|, den) = 1`. Every constructor
//! and operation maintains this canonical form, so equality is structural.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::{BigInt, BigUint, Sign};

/// An exact rational number.
///
/// ```
/// use hetero_exact::Ratio;
/// let tau = Ratio::from_frac(1, 1_000_000);   // 1 µs in seconds
/// let pi = Ratio::from_frac(1, 100_000);      // 10 µs
/// let a = &tau + &pi;
/// assert_eq!(a.to_string(), "11/1000000");
/// assert!(a.to_f64() > 0.0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: BigInt,
    den: BigUint, // > 0, coprime with |num|
}

/// Error returned when parsing a [`Ratio`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatioError {
    what: &'static str,
}

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.what)
    }
}

impl std::error::Error for ParseRatioError {}

impl Ratio {
    /// The value `0`.
    pub fn zero() -> Self {
        Ratio {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Ratio {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// Builds `num / den` from machine integers.
    ///
    /// # Panics
    /// Panics when `den == 0`.
    pub fn from_frac(num: i64, den: u64) -> Self {
        Self::new(BigInt::from(num), BigUint::from(den))
    }

    /// Builds and reduces `num / den`.
    ///
    /// # Panics
    /// Panics when `den` is zero.
    pub fn new(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "Ratio with zero denominator");
        if num.is_zero() {
            return Self::zero();
        }
        let g = num.magnitude().gcd(&den);
        let (rnum, _) = num.magnitude().divrem(&g);
        let (rden, _) = den.divrem(&g);
        Ratio {
            num: BigInt::from_sign_mag(num.sign(), rnum),
            den: rden,
        }
    }

    /// Builds the integer `v`.
    pub fn from_int(v: i64) -> Self {
        Ratio {
            num: BigInt::from(v),
            den: BigUint::one(),
        }
    }

    /// Exact conversion from a finite `f64` (every finite double is a
    /// dyadic rational). Returns `None` for NaN or infinity.
    pub fn from_f64(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        // hetero-check: allow(float-eq) — ±0.0 is an exact sentinel; all other doubles decompose via their bits below
        if v == 0.0 {
            return Some(Self::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 {
            Sign::Minus
        } else {
            Sign::Plus
        };
        let exp = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // Significand and unbiased power-of-two exponent.
        let (mantissa, exp2) = if exp == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), exp - 1075)
        };
        let m = BigUint::from(mantissa);
        Some(if exp2 >= 0 {
            Ratio::new(
                BigInt::from_sign_mag(sign, &m << exp2 as u64),
                BigUint::one(),
            )
        } else {
            Ratio::new(
                BigInt::from_sign_mag(sign, m),
                BigUint::one() << (-exp2) as u64,
            )
        })
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Ratio {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(&self) -> Self {
        assert!(!self.is_zero(), "reciprocal of zero Ratio");
        Ratio {
            num: BigInt::from_sign_mag(self.num.sign(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// `self` raised to an integer power (negative exponents invert).
    ///
    /// # Panics
    /// Panics on `0^negative`.
    pub fn powi(&self, exp: i32) -> Self {
        if exp >= 0 {
            Ratio {
                num: self.num.pow(exp as u32),
                den: self.den.pow(exp as u32),
            }
        } else {
            self.recip().powi(-exp)
        }
    }

    /// Rounds to the nearest `f64` (round-half-even, correctly rounded).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let num = self.num.magnitude();
        let num_bits = num.bits() as i64;
        let den_bits = self.den.bits() as i64;
        // The value lies in [2^(e-1), 2^(e+1)) for e = num_bits - den_bits.
        let exp_est = num_bits - den_bits;

        let mag = if exp_est <= -1022 {
            // (Possibly) subnormal result: evaluate in fixed point at
            // 2^-1074 with manual round-half-even. The rounded integer is
            // < 2^53, so the final conversion and scaling are both exact —
            // a single rounding overall.
            let scaled = num << 1074u64;
            let (q, r) = scaled.divrem(&self.den);
            // hetero-check: allow(expect) — a subnormal significand is < 2^53 by the exp_est bound
            let q = q.to_u64().expect("subnormal mantissa fits in u64");
            let twice_r = &r + &r;
            let round_up = match twice_r.cmp(&self.den) {
                Ordering::Greater => true,
                Ordering::Equal => q & 1 == 1,
                Ordering::Less => false,
            };
            (q + u64::from(round_up)) as f64 * (-1074f64).exp2()
        } else {
            // Normal result: produce a 63–64-bit truncated quotient, fold
            // the remainder into the low bit (round-to-odd sticky), then
            // let the u64→f64 conversion perform the one real rounding.
            // Round-to-odd at ≥ 55 bits followed by round-to-nearest at 53
            // bits is correctly rounded.
            let shift = den_bits + 63 - num_bits;
            let scaled = if shift >= 0 {
                num << shift as u64
            } else {
                num >> (-shift) as u64
            };
            let (q, r) = scaled.divrem(&self.den);
            // hetero-check: allow(expect) — the shift is chosen so the quotient has 63–64 bits
            let mut q = q.to_u64().expect("63-64 bit quotient fits in u64");
            let inexact = !r.is_zero()
                || (shift < 0 && {
                    // Bits shifted out before the division also count as sticky.
                    let back = &scaled << (-shift) as u64;
                    &back != num
                });
            if inexact {
                q |= 1;
            }
            // Scale by 2^(-shift) in two exact halves: a single exp2 can
            // under/overflow even when the final value is representable
            // (e.g. q·2^-1075 with q ≈ 2^63).
            let e = -shift;
            let (h1, h2) = (e / 2, e - e / 2);
            q as f64 * (h1 as f64).exp2() * (h2 as f64).exp2()
        };
        if self.num.is_negative() {
            -mag
        } else {
            mag
        }
    }

    /// Compares `self` with zero more cheaply than constructing a zero.
    pub fn cmp_zero(&self) -> Ordering {
        match self.num.sign() {
            Sign::Minus => Ordering::Less,
            Sign::Zero => Ordering::Equal,
            Sign::Plus => Ordering::Greater,
        }
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Self::zero()
    }
}

impl From<i64> for Ratio {
    fn from(v: i64) -> Self {
        Self::from_int(v)
    }
}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    /// Parses `"-3/4"`, `"3/4"`, `"7"`, or `"-7"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, rest) = match s.strip_prefix('-') {
            Some(r) => (Sign::Minus, r),
            None => (Sign::Plus, s),
        };
        let (num_s, den_s) = match rest.split_once('/') {
            Some((n, d)) => (n, d),
            None => (rest, "1"),
        };
        let num = BigUint::parse_decimal(num_s).ok_or(ParseRatioError { what: "numerator" })?;
        let den = BigUint::parse_decimal(den_s).ok_or(ParseRatioError {
            what: "denominator",
        })?;
        if den.is_zero() {
            return Err(ParseRatioError {
                what: "zero denominator",
            });
        }
        let sign = if num.is_zero() { Sign::Zero } else { sign };
        Ok(Ratio::new(BigInt::from_sign_mag(sign, num), den))
    }
}

impl Neg for &Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Add<&Ratio> for &Ratio {
    type Output = Ratio;
    fn add(self, rhs: &Ratio) -> Ratio {
        // a/b + c/d = (a·d + c·b) / (b·d), reduced by the constructor.
        let num =
            &self.num * &BigInt::from(rhs.den.clone()) + &rhs.num * &BigInt::from(self.den.clone());
        Ratio::new(num, &self.den * &rhs.den)
    }
}

impl Sub<&Ratio> for &Ratio {
    type Output = Ratio;
    fn sub(self, rhs: &Ratio) -> Ratio {
        self + &(-rhs)
    }
}

impl Mul<&Ratio> for &Ratio {
    type Output = Ratio;
    fn mul(self, rhs: &Ratio) -> Ratio {
        Ratio::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div<&Ratio> for &Ratio {
    type Output = Ratio;
    // Division is multiplication by the reciprocal; the `*` is the point.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: &Ratio) -> Ratio {
        self * &rhs.recip()
    }
}

macro_rules! forward_ratio_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: &Ratio) -> Ratio {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<Ratio> for &Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                $trait::$method(self, &rhs)
            }
        }
    };
}
forward_ratio_binop!(Add, add);
forward_ratio_binop!(Sub, sub);
forward_ratio_binop!(Mul, mul);
forward_ratio_binop!(Div, div);

impl AddAssign<&Ratio> for Ratio {
    fn add_assign(&mut self, rhs: &Ratio) {
        *self = &*self + rhs;
    }
}
impl SubAssign<&Ratio> for Ratio {
    fn sub_assign(&mut self, rhs: &Ratio) {
        *self = &*self - rhs;
    }
}
impl MulAssign<&Ratio> for Ratio {
    fn mul_assign(&mut self, rhs: &Ratio) {
        *self = &*self * rhs;
    }
}
impl DivAssign<&Ratio> for Ratio {
    fn div_assign(&mut self, rhs: &Ratio) {
        *self = &*self / rhs;
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  ⇔  a·d vs c·b  (b, d > 0).
        let lhs = &self.num * &BigInt::from(other.den.clone());
        let rhs = &other.num * &BigInt::from(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: u64) -> Ratio {
        Ratio::from_frac(n, d)
    }

    #[test]
    fn construction_reduces() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-6, 9).to_string(), "-2/3");
        assert_eq!(r(0, 7), Ratio::zero());
        assert_eq!(r(0, 7).denom(), &BigUint::one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn field_arithmetic() {
        assert_eq!(r(1, 3) + r(1, 6), r(1, 2));
        assert_eq!(r(1, 3) - r(1, 2), r(-1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(3, 5), r(-3, 5));
    }

    #[test]
    fn ordering_matches_real_numbers() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < Ratio::zero());
        assert!(r(7, 1) > r(20, 3));
        assert_eq!(r(4, 6).cmp(&r(2, 3)), Ordering::Equal);
    }

    #[test]
    fn recip_and_powi() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
        assert_eq!(r(2, 3).powi(3), r(8, 27));
        assert_eq!(r(2, 3).powi(-2), r(9, 4));
        assert_eq!(r(5, 7).powi(0), Ratio::one());
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Ratio::zero().recip();
    }

    #[test]
    fn f64_roundtrip_exact() {
        for v in [
            0.0,
            1.0,
            -1.0,
            0.5,
            -0.75,
            3.5,
            1e-300,
            123456.789,
            2.0f64.powi(-1074),
        ] {
            let exact = Ratio::from_f64(v).unwrap();
            assert_eq!(exact.to_f64(), v, "roundtrip {v}");
        }
        assert!(Ratio::from_f64(f64::NAN).is_none());
        assert!(Ratio::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn from_f64_gives_exact_dyadic() {
        assert_eq!(Ratio::from_f64(0.25).unwrap(), r(1, 4));
        assert_eq!(Ratio::from_f64(-1.5).unwrap(), r(-3, 2));
    }

    #[test]
    fn to_f64_handles_tiny_differences() {
        // (1/3 + 1/5) - 8/15 must be exactly zero.
        let d = r(1, 3) + r(1, 5) - r(8, 15);
        assert!(d.is_zero());
        // to_f64 of very small magnitudes is still correct.
        let tiny = r(1, 1_000_000_007).powi(3);
        assert!((tiny.to_f64() - (1.0f64 / 1_000_000_007.0).powi(3)).abs() < 1e-40);
    }

    #[test]
    fn parse_literals() {
        assert_eq!("3/4".parse::<Ratio>().unwrap(), r(3, 4));
        assert_eq!("-3/4".parse::<Ratio>().unwrap(), r(-3, 4));
        assert_eq!("17".parse::<Ratio>().unwrap(), r(17, 1));
        assert_eq!("-0".parse::<Ratio>().unwrap(), Ratio::zero());
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("x/2".parse::<Ratio>().is_err());
    }

    #[test]
    fn display_canonical_forms() {
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(-9, 6).to_string(), "-3/2");
        assert_eq!(Ratio::zero().to_string(), "0");
    }

    #[test]
    fn sign_queries() {
        assert!(r(1, 2).is_positive());
        assert!(r(-1, 2).is_negative());
        assert!(Ratio::zero().is_zero());
        assert_eq!(r(-5, 3).abs(), r(5, 3));
        assert_eq!(r(-1, 9).cmp_zero(), Ordering::Less);
    }
}
