//! Signed arbitrary-precision integers (sign + magnitude).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::BigUint;

/// Sign of a [`BigInt`]. Zero always carries [`Sign::Zero`], so every value
/// has exactly one representation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Plus,
}

impl Sign {
    /// Multiplicative composition of signs.
    fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Plus, Sign::Plus) | (Sign::Minus, Sign::Minus) => Sign::Plus,
            _ => Sign::Minus,
        }
    }

    /// The opposite sign.
    fn neg(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// ```
/// use hetero_exact::BigInt;
/// let a = BigInt::from(-7i64);
/// let b = BigInt::from(3i64);
/// assert_eq!((&a * &b).to_string(), "-21");
/// assert_eq!((&a + &b).to_string(), "-4");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::one(),
        }
    }

    /// Builds from a sign and magnitude, normalizing zero.
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            Self::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with Sign::Zero");
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|`.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_sign_mag(
            if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Plus
            },
            self.mag.clone(),
        )
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        match self.sign {
            Sign::Minus => -m,
            _ => m,
        }
    }

    /// `self` raised to `exp`.
    pub fn pow(&self, exp: u32) -> Self {
        let sign = if self.is_zero() && exp > 0 {
            Sign::Zero
        } else if self.sign == Sign::Minus && exp % 2 == 1 {
            Sign::Minus
        } else if exp == 0 {
            Sign::Plus
        } else if self.is_zero() {
            Sign::Zero
        } else {
            Sign::Plus
        };
        BigInt::from_sign_mag(sign, self.mag.pow(exp))
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        let sign = if mag.is_zero() {
            Sign::Zero
        } else {
            Sign::Plus
        };
        BigInt { sign, mag }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Self::zero(),
            Ordering::Greater => BigInt::from_sign_mag(Sign::Plus, BigUint::from(v as u64)),
            Ordering::Less => BigInt::from_sign_mag(Sign::Minus, BigUint::from(v.unsigned_abs())),
        }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Self::zero(),
            Ordering::Greater => BigInt::from_sign_mag(Sign::Plus, BigUint::from(v as u128)),
            Ordering::Less => BigInt::from_sign_mag(Sign::Minus, BigUint::from(v.unsigned_abs())),
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from(BigUint::from(v))
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.neg(),
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.neg(),
            mag: self.mag,
        }
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, &self.mag + &rhs.mag),
            _ => {
                // Opposite signs: subtract the smaller magnitude.
                match self.mag.cmp(&rhs.mag) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => BigInt::from_sign_mag(self.sign, &self.mag - &rhs.mag),
                    Ordering::Less => BigInt::from_sign_mag(rhs.sign, &rhs.mag - &self.mag),
                }
            }
        }
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_sign_mag(self.sign.mul(rhs.sign), &self.mag * &rhs.mag)
    }
}

macro_rules! forward_signed_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(self, &rhs)
            }
        }
    };
}
forward_signed_binop!(Add, add);
forward_signed_binop!(Sub, sub);
forward_signed_binop!(Mul, mul);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Minus, Sign::Minus) => other.mag.cmp(&self.mag),
            (Sign::Minus, _) => Ordering::Less,
            (Sign::Zero, Sign::Minus) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.mag.cmp(&other.mag),
            (Sign::Plus, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            f.write_str("-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_is_canonical() {
        assert_eq!(int(0).sign(), Sign::Zero);
        assert_eq!(int(5) - int(5), BigInt::zero());
        assert_eq!((int(5) - int(5)).sign(), Sign::Zero);
        assert_eq!(-BigInt::zero(), BigInt::zero());
    }

    #[test]
    fn signed_addition_cases() {
        let cases: [(i128, i128); 8] = [
            (5, 3),
            (-5, 3),
            (5, -3),
            (-5, -3),
            (3, -5),
            (-3, 5),
            (0, -7),
            (7, 0),
        ];
        for (a, b) in cases {
            assert_eq!(int(a) + int(b), int(a + b), "{a} + {b}");
            assert_eq!(int(a) - int(b), int(a - b), "{a} - {b}");
            assert_eq!(int(a) * int(b), int(a * b), "{a} * {b}");
        }
    }

    #[test]
    fn ordering_spans_signs() {
        let mut vals = [int(3), int(-10), int(0), int(7), int(-2)];
        vals.sort();
        let shown: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
        assert_eq!(shown, ["-10", "-2", "0", "3", "7"]);
    }

    #[test]
    fn pow_sign_rules() {
        assert_eq!(int(-2).pow(3), int(-8));
        assert_eq!(int(-2).pow(4), int(16));
        assert_eq!(int(0).pow(5), int(0));
        assert_eq!(int(0).pow(0), int(1));
        assert_eq!(int(-7).pow(0), int(1));
    }

    #[test]
    fn display_includes_sign() {
        assert_eq!(int(-12345).to_string(), "-12345");
        assert_eq!(int(12345).to_string(), "12345");
        assert_eq!(int(0).to_string(), "0");
    }

    #[test]
    fn to_f64_signed() {
        assert_eq!(int(-1 << 30).to_f64(), -(1i64 << 30) as f64);
    }

    #[test]
    #[should_panic(expected = "nonzero magnitude")]
    fn from_sign_mag_rejects_zero_sign_nonzero_mag() {
        let _ = BigInt::from_sign_mag(Sign::Zero, BigUint::from(3u64));
    }
}
