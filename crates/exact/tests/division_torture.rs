//! Targeted stress tests for Knuth Algorithm D, whose rare branches
//! (trial-quotient refinement, the add-back correction) fire with
//! probability ~2/2⁶⁴ on random inputs and therefore need *crafted*
//! operands. Every case is verified through the reconstruction identity
//! `q·d + r = a` with `r < d`, which is sound regardless of which branch
//! executed.

use hetero_exact::BigUint;
use proptest::prelude::*;

fn check_divrem(a: &BigUint, d: &BigUint) {
    let (q, r) = a.divrem(d);
    assert!(r < *d, "remainder bound: {r:?} !< {d:?}");
    assert_eq!(&(&q * d) + &r, *a, "reconstruction for {a:?} / {d:?}");
}

#[test]
fn classic_add_back_triggers() {
    // The canonical Algorithm D stress family (Knuth TAOCP 4.3.1,
    // exercise 21 style): dividends of the form (b^k − 1)-ish against
    // divisors with a maximal high limb and adversarial low limbs.
    let max = u64::MAX;
    let half = 1u64 << 63;
    let cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
        // u = [0, 0, high], v = [low, high-ish]: forces q̂ refinement.
        (vec![0, 0, half], vec![max, half]),
        (vec![0, 0, half], vec![1, half]),
        (vec![max, max, max - 1], vec![max, max]),
        (vec![0, max - 1, max], vec![max, max]),
        // Three-limb over two-limb with carry-heavy patterns.
        (vec![max, 0, half], vec![max, half | 1]),
        (vec![1, 0, 0, half], vec![max, max, half]),
        (vec![0, 0, 0, 1], vec![max, max, max]),
        // Dividend just below a multiple of the divisor.
        (vec![max - 1, max, max], vec![max, 1, 1]),
    ];
    for (u, v) in cases {
        let a = BigUint::from_limbs(u);
        let d = BigUint::from_limbs(v);
        check_divrem(&a, &d);
        // And the transposed magnitude case.
        check_divrem(&d, &a);
    }
}

#[test]
fn divisor_high_bit_boundaries() {
    // Normalization shifts depend on the divisor's leading zeros; probe
    // every leading-zero count at the top limb.
    let a = BigUint::from_limbs(vec![
        0x0123_4567_89ab_cdef,
        u64::MAX,
        0xfedc_ba98_7654_3210,
        7,
    ]);
    for shift in 0..64u64 {
        let d = BigUint::from_limbs(vec![u64::MAX, 1u64 << shift]);
        check_divrem(&a, &d);
    }
}

#[test]
fn quotient_one_and_zero_boundaries() {
    // a = d, a = d ± 1: quotient exactly 1 or 0 with extreme remainders.
    let d = BigUint::from_limbs(vec![u64::MAX, u64::MAX, 3]);
    let one = BigUint::one();
    check_divrem(&d, &d);
    check_divrem(&(&d + &one), &d);
    check_divrem(&(&d - &one), &d);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn adversarial_limb_patterns(
        u_pattern in prop::collection::vec(
            prop_oneof![Just(0u64), Just(1), Just(u64::MAX), Just(u64::MAX - 1),
                        Just(1u64 << 63), any::<u64>()],
            1..7),
        v_pattern in prop::collection::vec(
            prop_oneof![Just(0u64), Just(1), Just(u64::MAX), Just(u64::MAX - 1),
                        Just(1u64 << 63), any::<u64>()],
            1..5),
    ) {
        // Saturated limbs (0, MAX, 2⁶³) are exactly where q̂ over- and
        // under-estimates concentrate.
        let a = BigUint::from_limbs(u_pattern);
        let d = BigUint::from_limbs(v_pattern);
        prop_assume!(!d.is_zero());
        let (q, r) = a.divrem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn multiply_then_divide_roundtrips(
        q in prop::collection::vec(any::<u64>(), 1..5),
        d in prop::collection::vec(any::<u64>(), 1..5),
        r_seed in any::<u64>(),
    ) {
        let q = BigUint::from_limbs(q);
        let d = BigUint::from_limbs(d);
        prop_assume!(!d.is_zero());
        // r strictly below d: reduce a seed value mod d.
        let r = BigUint::from(r_seed).divrem(&d).1;
        let a = &(&q * &d) + &r;
        let (q2, r2) = a.divrem(&d);
        prop_assert_eq!(q2, q);
        prop_assert_eq!(r2, r);
    }
}
