//! Property-based tests for hetero-exact, cross-checked against native
//! 128-bit arithmetic and against algebraic identities that must hold for
//! any correct implementation.

use hetero_exact::{BigInt, BigUint, Ratio};
use proptest::prelude::*;

fn biguint_strategy() -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 0..8).prop_map(BigUint::from_limbs)
}

fn ratio_strategy() -> impl Strategy<Value = Ratio> {
    (any::<i64>(), 1u64..=u64::MAX).prop_map(|(n, d)| Ratio::from_frac(n, d))
}

proptest! {
    // ---- BigUint vs u128 oracle ----

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let s = BigUint::from(a) + BigUint::from(b);
        prop_assert_eq!(s.to_u128(), Some(u128::from(a) + u128::from(b)));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let p = BigUint::from(a) * BigUint::from(b);
        prop_assert_eq!(p.to_u128(), Some(u128::from(a) * u128::from(b)));
    }

    #[test]
    fn divrem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = BigUint::from(a).divrem(&BigUint::from(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    // ---- BigUint algebraic laws on arbitrary-size operands ----

    #[test]
    fn add_commutes(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn mul_commutes(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes(a in biguint_strategy(), b in biguint_strategy(), c in biguint_strategy()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn add_then_sub_roundtrips(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!((&a + &b).checked_sub(&b), Some(a));
    }

    #[test]
    fn divrem_reconstructs(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&q * &b + &r, a);
    }

    #[test]
    fn shift_is_pow2_mul(a in biguint_strategy(), s in 0u64..300) {
        let two_pow = BigUint::one() << s;
        prop_assert_eq!(&a << s, &a * &two_pow);
    }

    #[test]
    fn gcd_divides_both(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
        // And matches the Euclidean definition on a second path.
        prop_assert_eq!(b.gcd(&a), g);
    }

    #[test]
    fn decimal_roundtrip(a in biguint_strategy()) {
        let s = a.to_string();
        prop_assert_eq!(BigUint::parse_decimal(&s), Some(a));
    }

    // ---- BigInt vs i128 oracle ----

    #[test]
    fn signed_ops_match_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!(&ba + &bb, BigInt::from(i128::from(a) + i128::from(b)));
        prop_assert_eq!(&ba - &bb, BigInt::from(i128::from(a) - i128::from(b)));
        prop_assert_eq!(&ba * &bb, BigInt::from(i128::from(a) * i128::from(b)));
    }

    #[test]
    fn signed_order_matches_i64(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(BigInt::from(a).cmp(&BigInt::from(b)), a.cmp(&b));
    }

    // ---- Ratio field laws ----

    #[test]
    fn ratio_add_commutes(a in ratio_strategy(), b in ratio_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn ratio_add_associates(a in ratio_strategy(), b in ratio_strategy(), c in ratio_strategy()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn ratio_mul_distributes(a in ratio_strategy(), b in ratio_strategy(), c in ratio_strategy()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn ratio_sub_is_add_neg(a in ratio_strategy(), b in ratio_strategy()) {
        prop_assert_eq!(&a - &b, &a + &(-&b));
        prop_assert!((&a - &a).is_zero());
    }

    #[test]
    fn ratio_div_undoes_mul(a in ratio_strategy(), b in ratio_strategy()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(&(&a * &b) / &b, a);
    }

    #[test]
    fn ratio_is_canonical(a in ratio_strategy()) {
        if a.is_zero() {
            prop_assert!(a.denom().is_one());
        } else {
            prop_assert!(a.numer().magnitude().gcd(a.denom()).is_one());
        }
    }

    #[test]
    fn ratio_order_matches_f64(n1 in -10_000i64..10_000, d1 in 1u64..10_000,
                               n2 in -10_000i64..10_000, d2 in 1u64..10_000) {
        // On small fractions f64 comparison is exact enough to be an oracle
        // unless the two values are equal as rationals.
        let (a, b) = (Ratio::from_frac(n1, d1), Ratio::from_frac(n2, d2));
        let fa = n1 as f64 / d1 as f64;
        let fb = n2 as f64 / d2 as f64;
        if a == b {
            prop_assert_eq!(i128::from(n1) * i128::from(d2), i128::from(n2) * i128::from(d1));
        } else {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn ratio_f64_roundtrip(v in any::<f64>()) {
        prop_assume!(v.is_finite());
        let r = Ratio::from_f64(v).unwrap();
        prop_assert_eq!(r.to_f64(), v);
    }

    #[test]
    fn ratio_parse_display_roundtrip(a in ratio_strategy()) {
        let shown = a.to_string();
        prop_assert_eq!(shown.parse::<Ratio>().unwrap(), a);
    }
}
