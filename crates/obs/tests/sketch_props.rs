//! Property tests for the mergeable quantile sketch: the three contracts
//! the JSONL/manifest pipeline and `obsdiff` lean on.
//!
//! * **Merge is exact algebra** — associative and commutative, and a
//!   merge of disjoint shards is bit-identical to recording the union
//!   into one sketch (integer bucket counts over a universal grid).
//! * **Insertion order is irrelevant** — any permutation of the same
//!   observations yields a bit-identical sketch, so parallel collection
//!   order can never leak into reported quantiles.
//! * **Bounded rank error** — against a sorted-oracle nearest-rank
//!   quantile, every reported in-range quantile is within a factor
//!   `GAMMA^(1/2)` of the true sample at that rank.

use hetero_obs::sketch::{QuantileSketch, GAMMA};
use proptest::prelude::*;

/// Positive observations across ~12 decades, inside the finite grid.
fn in_range_value() -> impl Strategy<Value = f64> {
    (1.0f64..2.0, -20i32..20).prop_map(|(m, e)| m * (e as f64).exp2())
}

fn in_range_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(in_range_value(), 1..200)
}

/// Observations including the awkward cases: non-positive values and
/// grid under/overflows, which land in the exact-extreme buckets.
fn any_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        in_range_value(),
        Just(0.0),
        Just(-5.0),
        Just(1e300),
        Just(1e-300),
    ]
}

fn any_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(any_value(), 0..120)
}

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.record(v);
    }
    s
}

proptest! {
    #[test]
    fn merge_is_commutative(xs in any_values(), ys in any_values()) {
        let (a, b) = (sketch_of(&xs), sketch_of(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
    }

    #[test]
    fn merge_is_associative_and_equals_the_union(
        xs in any_values(),
        ys in any_values(),
        zs in any_values(),
    ) {
        let (a, b, c) = (sketch_of(&xs), sketch_of(&ys), sketch_of(&zs));
        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // … and both equal one sketch fed every observation directly.
        let union: Vec<f64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(&left, &sketch_of(&union));
    }

    #[test]
    fn insertion_order_is_irrelevant(xs in any_values(), cut in any::<prop::sample::Index>()) {
        let baseline = sketch_of(&xs);
        // Reversal and an arbitrary rotation both reorder every element.
        let mut reversed = xs.clone();
        reversed.reverse();
        prop_assert_eq!(&baseline, &sketch_of(&reversed));
        if !xs.is_empty() {
            let k = cut.index(xs.len());
            let rotated: Vec<f64> = xs[k..].iter().chain(&xs[..k]).copied().collect();
            prop_assert_eq!(&baseline, &sketch_of(&rotated));
        }
    }

    #[test]
    fn quantiles_stay_within_half_a_bucket_of_the_sorted_oracle(xs in in_range_values()) {
        let s = sketch_of(&xs);
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let half_bucket = GAMMA.sqrt() * (1.0 + 1e-12);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
            let oracle = sorted[rank];
            let got = s.quantile(q);
            prop_assert!(
                got <= oracle * half_bucket && got >= oracle / half_bucket,
                "q = {}: sketch {} vs oracle {} (ratio {})",
                q, got, oracle, got / oracle
            );
        }
    }

    #[test]
    fn extremes_are_exact_whatever_the_data(xs in any_values()) {
        let s = sketch_of(&xs);
        prop_assert_eq!(s.count(), xs.len() as u64);
        if xs.is_empty() {
            prop_assert!(s.min().is_nan() && s.max().is_nan());
        } else {
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(s.min().to_bits(), lo.to_bits());
            prop_assert_eq!(s.max().to_bits(), hi.to_bits());
            // Quantiles are bucket midpoints clamped into [min, max], so
            // they can never escape the observed range.
            for q in [0.0, 0.5, 1.0] {
                let v = s.quantile(q);
                prop_assert!(v >= lo && v <= hi, "quantile({}) = {} outside [{}, {}]", q, v, lo, hi);
            }
        }
    }
}
