//! Integration tests for the process-global collector handle.
//!
//! The handle is process-wide state and the test harness is
//! multi-threaded, so every test that toggles it serializes on one lock.

use std::sync::Mutex;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn disabled_calls_are_no_ops() {
    let _g = serialized();
    hetero_obs::disable();
    hetero_obs::reset();
    hetero_obs::count("noop.counter", 5);
    hetero_obs::gauge_max("noop.gauge", 5);
    hetero_obs::observe("noop.value", 1.0);
    hetero_obs::observe_hist("noop.hist", 1.0, 0.0, 2.0, 2);
    hetero_obs::counters::XENGINE_REPLACE.bump();
    drop(hetero_obs::timed("noop.span"));
    let snap = hetero_obs::snapshot();
    assert_eq!(snap.counter("noop.counter"), 0);
    assert_eq!(snap.counter("xengine.replace"), 0);
    assert!(snap.values.is_empty());
    assert!(snap.hists.is_empty());
    assert!(snap.spans.is_empty());
}

#[test]
fn enabled_collects_and_reset_clears() {
    let _g = serialized();
    hetero_obs::enable();
    hetero_obs::reset();
    hetero_obs::count("api.counter", 2);
    hetero_obs::count("api.counter", 3);
    hetero_obs::gauge_max("api.gauge", 7);
    hetero_obs::gauge_max("api.gauge", 4);
    hetero_obs::observe("api.value", 1.5);
    hetero_obs::observe_hist("api.hist", 0.5, 0.0, 1.0, 4);
    hetero_obs::counters::XENGINE_REPLACE.bump();
    hetero_obs::counters::SELECTION_SUBSET_NODES.add(10);
    {
        let _span = hetero_obs::timed("api.span");
    }
    let snap = hetero_obs::snapshot();
    assert_eq!(snap.counter("api.counter"), 5);
    assert_eq!(snap.gauge("api.gauge"), 7);
    assert_eq!(snap.counter("xengine.replace"), 1);
    assert_eq!(snap.counter("selection.subset_nodes"), 10);
    assert_eq!(snap.values.len(), 1);
    assert_eq!(snap.hists.len(), 1);
    assert_eq!(snap.spans.len(), 1);
    assert_eq!(snap.spans[0].name, "api.span");
    assert!(snap.spans[0].dur_us >= 0.0);

    hetero_obs::reset();
    let snap = hetero_obs::snapshot();
    assert!(snap.counters.iter().all(|&(_, v)| v == 0));
    assert!(snap.spans.is_empty());
    hetero_obs::disable();
}

#[test]
fn fingerprint_is_deterministic_across_identical_runs() {
    let _g = serialized();
    let run = || {
        hetero_obs::enable();
        hetero_obs::reset();
        for i in 0..17u64 {
            hetero_obs::count("det.counter", i % 3);
            hetero_obs::gauge_max("det.gauge", (i * 7) % 11);
        }
        hetero_obs::counters::XENGINE_COMMIT.add(9);
        let fp = hetero_obs::snapshot().counter_fingerprint();
        hetero_obs::disable();
        fp
    };
    assert_eq!(run(), run());
}

#[test]
fn timed_span_survives_mid_flight_disable() {
    let _g = serialized();
    hetero_obs::enable();
    hetero_obs::reset();
    let span = hetero_obs::timed("api.mid_flight");
    hetero_obs::disable();
    span.finish();
    let snap = hetero_obs::snapshot();
    assert_eq!(snap.spans.len(), 1, "live span records even after disable");
    hetero_obs::reset();
}
