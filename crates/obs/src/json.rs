//! A minimal JSON tree with a renderer and a strict parser.
//!
//! The observability sinks must emit valid JSON and the CI stream checker
//! must *validate* it, all without external dependencies — so this module
//! owns both directions. Objects preserve insertion order (sinks control
//! ordering for deterministic output); rendering is compact (no
//! whitespace); non-finite numbers render as `null` since JSON has no
//! representation for them.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (JSON numbers are parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest-roundtrip Display never produces
                    // exponent notation, so the text is valid JSON.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(pairs)),
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a second \uXXXX must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("lone high surrogate".into());
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(format!("invalid code point {code:#x}")),
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(b) if b < 0x20 => return Err("raw control character in string".into()),
                Some(b) => {
                    // Re-assemble UTF-8 continuation bytes verbatim.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok());
                    match chunk {
                        Some(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        None => return Err("invalid UTF-8 in string".into()),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err("bad \\u escape".into()),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

fn utf8_width(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structures() {
        let v = Value::Obj(vec![
            ("event".into(), Value::Str("counter".into())),
            ("name".into(), Value::Str("xengine.replace".into())),
            ("value".into(), Value::Num(42.0)),
            (
                "nested".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null, Value::Num(-1.5)]),
            ),
        ]);
        let text = v.render();
        assert_eq!(
            text,
            r#"{"event":"counter","name":"xengine.replace","value":42,"nested":[true,null,-1.5]}"#
        );
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}µ→".into());
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_parse() {
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn numbers_parse_with_exponents() {
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-2.5E-1").unwrap().as_f64(), Some(-0.25));
    }

    #[test]
    fn nonfinite_renders_null() {
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn rejects_trailing_garbage_and_malformed_input() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn get_navigates_objects() {
        let v = parse(r#"{"a":{"b":7}}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.get("b")).and_then(Value::as_f64),
            Some(7.0)
        );
        assert!(v.get("missing").is_none());
    }
}
