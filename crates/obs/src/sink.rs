//! Output sinks: the JSON-lines event stream and the human summary table.
//!
//! The JSONL contract (checked by the CI stream validator): **every line
//! is one JSON object carrying at least the keys `event`, `name`, and
//! `value`**. `event` selects the payload shape:
//!
//! | event       | value payload                                       |
//! |-------------|-----------------------------------------------------|
//! | `counter`   | number                                              |
//! | `gauge`     | number (high-water mark)                            |
//! | `value`     | `{count, mean, stddev, min, max}`                   |
//! | `histogram` | `{total, buckets: [[lo, count], …]}`                |
//! | `sketch`    | `{count, min, max, p50, p90, p99}`                  |
//! | `span`      | `{start_us, dur_us}`                                |
//! | `spantree`  | `{weight, start, end, slack, frames, folded}`       |
//! | `manifest`  | see [`RunManifest`](crate::manifest::RunManifest)   |
//!
//! `sketch` lines carry the quantile summaries of the mergeable
//! log-bucketed sketches ([`crate::sketch`]); `spantree` lines are
//! emitted by the CLI for commands that execute a protocol run, carrying
//! the causal critical path ([`crate::causal`]).

use std::fmt::Write as _;

use crate::collector::Snapshot;
use crate::json::{self, Value};

impl Snapshot {
    /// The JSON-lines event stream, one `{"event","name","value"}` object
    /// per line, deterministically ordered.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut line = |event: &str, name: &str, value: Value| {
            let obj = Value::Obj(vec![
                ("event".into(), Value::Str(event.into())),
                ("name".into(), Value::Str(name.into())),
                ("value".into(), value),
            ]);
            out.push_str(&obj.render());
            out.push('\n');
        };
        for (name, v) in &self.counters {
            line("counter", name, Value::Num(*v as f64));
        }
        for (name, v) in &self.gauges {
            line("gauge", name, Value::Num(*v as f64));
        }
        for (name, s) in &self.values {
            line(
                "value",
                name,
                Value::Obj(vec![
                    ("count".into(), Value::Num(s.count as f64)),
                    ("mean".into(), Value::Num(s.mean)),
                    ("stddev".into(), Value::Num(s.stddev)),
                    ("min".into(), Value::Num(s.min)),
                    ("max".into(), Value::Num(s.max)),
                ]),
            );
        }
        for (name, h) in &self.hists {
            line(
                "histogram",
                name,
                Value::Obj(vec![
                    ("total".into(), Value::Num(h.total as f64)),
                    (
                        "buckets".into(),
                        Value::Arr(
                            h.buckets
                                .iter()
                                .map(|&(lo, c)| {
                                    Value::Arr(vec![Value::Num(lo), Value::Num(c as f64)])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            );
        }
        for (name, s) in &self.sketches {
            line(
                "sketch",
                name,
                Value::Obj(vec![
                    ("count".into(), Value::Num(s.count as f64)),
                    ("min".into(), Value::Num(s.min)),
                    ("max".into(), Value::Num(s.max)),
                    ("p50".into(), Value::Num(s.p50)),
                    ("p90".into(), Value::Num(s.p90)),
                    ("p99".into(), Value::Num(s.p99)),
                ]),
            );
        }
        for span in &self.spans {
            line(
                "span",
                &span.name,
                Value::Obj(vec![
                    ("start_us".into(), Value::Num(span.start_us)),
                    ("dur_us".into(), Value::Num(span.dur_us)),
                ]),
            );
        }
        out
    }

    /// The human summary table printed by `hetero-cli --obs`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "── observability summary ──");
        if self.counters.is_empty()
            && self.gauges.is_empty()
            && self.values.is_empty()
            && self.hists.is_empty()
            && self.sketches.is_empty()
            && self.spans.is_empty()
        {
            let _ = writeln!(out, "  (nothing collected)");
            return out;
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {v:>14}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges (max)");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<40} {v:>14}");
            }
        }
        if !self.values.is_empty() {
            let _ = writeln!(out, "values");
            for (name, s) in &self.values {
                let _ = writeln!(
                    out,
                    "  {name:<40} n={:<8} mean={:<12.6} min={:<12.6} max={:<12.6}",
                    s.count, s.mean, s.min, s.max
                );
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(out, "histograms");
            for (name, h) in &self.hists {
                let _ = write!(out, "  {name:<40} n={:<8} ", h.total);
                // A coarse ASCII shape: one glyph per bucket, scaled to
                // the fullest bucket.
                let peak = h.buckets.iter().map(|&(_, c)| c).max().unwrap_or(0);
                for &(_, c) in &h.buckets {
                    let glyph = if peak == 0 || c == 0 {
                        '.'
                    } else {
                        const RAMP: [char; 5] = ['_', '-', '=', '#', '@'];
                        let i = ((c * RAMP.len() as u64).div_ceil(peak.max(1)) as usize)
                            .clamp(1, RAMP.len());
                        RAMP[i - 1]
                    };
                    out.push(glyph);
                }
                out.push('\n');
            }
        }
        if !self.sketches.is_empty() {
            let _ = writeln!(out, "sketches");
            for (name, s) in &self.sketches {
                let _ = writeln!(
                    out,
                    "  {name:<40} n={:<8} p50={:<12.6} p90={:<12.6} p99={:<12.6} max={:<12.6}",
                    s.count, s.p50, s.p90, s.p99, s.max
                );
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "spans");
            for span in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<40} {:>12.3} ms  (at +{:.3} ms)",
                    span.name,
                    span.dur_us / 1e3,
                    span.start_us / 1e3
                );
            }
        }
        out
    }
}

/// Validates one JSONL line against the stream contract: a JSON object
/// with string `event` and `name` keys and any `value` payload. This is
/// the checker the CI step and `tests/obs_stream.rs` run over emitted
/// files.
pub fn validate_jsonl_line(line: &str) -> Result<(), String> {
    let v = json::parse(line)?;
    if !matches!(v, Value::Obj(_)) {
        return Err("line is not a JSON object".into());
    }
    for key in ["event", "name"] {
        match v.get(key) {
            Some(Value::Str(_)) => {}
            Some(_) => return Err(format!("`{key}` is not a string")),
            None => return Err(format!("missing `{key}` key")),
        }
    }
    if v.get("value").is_none() {
        return Err("missing `value` key".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;

    fn sample() -> Snapshot {
        let mut c = Collector::new();
        c.count("xengine.replace", 12);
        c.gauge_max("sim.queue_high_water", 5);
        for v in [0.5, 1.5, 2.5] {
            c.observe("protocol.send", v);
            c.observe_hist("kahan", v, 0.0, 4.0, 4).unwrap();
        }
        c.record_span(crate::collector::WallSpan {
            name: "cli.fig3".into(),
            start_us: 10.0,
            dur_us: 250.5,
        });
        c.snapshot(&[("hot.extra", 3)])
    }

    #[test]
    fn every_jsonl_line_satisfies_the_contract() {
        let text = sample().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6, "counter×2, gauge, value, histogram, span");
        for line in lines {
            validate_jsonl_line(line).unwrap();
        }
    }

    #[test]
    fn jsonl_payload_shapes() {
        let text = sample().to_jsonl();
        let hist_line = text
            .lines()
            .find(|l| l.contains("\"histogram\""))
            .expect("histogram line");
        let v = crate::json::parse(hist_line).unwrap();
        let total = v
            .get("value")
            .and_then(|p| p.get("total"))
            .and_then(crate::json::Value::as_f64);
        assert_eq!(total, Some(3.0));
        let span_line = text.lines().find(|l| l.contains("\"span\"")).unwrap();
        let v = crate::json::parse(span_line).unwrap();
        assert_eq!(
            v.get("value")
                .and_then(|p| p.get("dur_us"))
                .and_then(crate::json::Value::as_f64),
            Some(250.5)
        );
    }

    #[test]
    fn sketch_lines_join_the_stream_when_present() {
        let mut c = Collector::new();
        for i in 1..=50 {
            c.sketch("protocol.lat", i as f64);
        }
        let snap = c.snapshot(&[]);
        let text = snap.to_jsonl();
        let sketch_line = text
            .lines()
            .find(|l| l.contains("\"sketch\""))
            .expect("sketch line");
        validate_jsonl_line(sketch_line).unwrap();
        let v = crate::json::parse(sketch_line).unwrap();
        assert_eq!(
            v.get("name").and_then(crate::json::Value::as_str),
            Some("protocol.lat")
        );
        let count = v
            .get("value")
            .and_then(|p| p.get("count"))
            .and_then(crate::json::Value::as_f64);
        assert_eq!(count, Some(50.0));
        for key in ["min", "max", "p50", "p90", "p99"] {
            assert!(
                v.get("value").and_then(|p| p.get(key)).is_some(),
                "sketch payload missing {key}"
            );
        }
        assert!(snap.summary().contains("sketches"));
    }

    #[test]
    fn validator_rejects_contract_breaches() {
        assert!(validate_jsonl_line("not json").is_err());
        assert!(validate_jsonl_line("[1,2]").is_err());
        assert!(validate_jsonl_line(r#"{"event":"x","name":"y"}"#).is_err());
        assert!(validate_jsonl_line(r#"{"event":7,"name":"y","value":0}"#).is_err());
        assert!(validate_jsonl_line(r#"{"event":"x","name":"y","value":null}"#).is_ok());
    }

    #[test]
    fn summary_renders_all_sections() {
        let s = sample().summary();
        for needle in [
            "counters",
            "xengine.replace",
            "hot.extra",
            "gauges (max)",
            "values",
            "protocol.send",
            "histograms",
            "spans",
            "cli.fig3",
        ] {
            assert!(s.contains(needle), "summary missing {needle}:\n{s}");
        }
        assert!(Snapshot::default().summary().contains("nothing collected"));
    }
}
