//! The run manifest: the reproducibility footer written alongside CSV and
//! JSONL output so future bench regressions are diffable — which command
//! ran, with which seed and parameters, how long it took, and what the
//! counters said.

use std::fmt::Write as _;

use crate::json::Value;

/// One run's provenance record.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    /// The CLI command (e.g. `fig3`, `all`).
    pub command: String,
    /// RNG seed in effect.
    pub seed: u64,
    /// Monte-Carlo trials per point.
    pub trials: usize,
    /// Largest cluster size swept.
    pub max_n: usize,
    /// Worker threads the parallel sweeps ran with (0 when the command
    /// predates the pool or never fanned out).
    pub threads: usize,
    /// Named model parameters (e.g. `tau`, `pi`, `delta`).
    pub params: Vec<(String, f64)>,
    /// Total wall time of the run, in milliseconds.
    pub wall_ms: f64,
    /// Counter and gauge totals at the end of the run.
    pub counters: Vec<(String, u64)>,
}

impl RunManifest {
    /// The manifest as one JSONL event line (same `{event, name, value}`
    /// contract as the rest of the stream; `event` is `"manifest"`).
    pub fn to_jsonl_line(&self) -> String {
        let value = Value::Obj(vec![
            ("seed".into(), Value::Num(self.seed as f64)),
            ("trials".into(), Value::Num(self.trials as f64)),
            ("max_n".into(), Value::Num(self.max_n as f64)),
            ("threads".into(), Value::Num(self.threads as f64)),
            (
                "params".into(),
                Value::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
            ("wall_ms".into(), Value::Num(self.wall_ms)),
            (
                "counters".into(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ]);
        Value::Obj(vec![
            ("event".into(), Value::Str("manifest".into())),
            ("name".into(), Value::Str(self.command.clone())),
            ("value".into(), value),
        ])
        .render()
    }

    /// The human-readable footer printed after a `--obs` run.
    pub fn footer(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "── run manifest ──");
        let _ = writeln!(out, "  command  {}", self.command);
        let _ = writeln!(out, "  seed     {}", self.seed);
        let _ = writeln!(out, "  trials   {}", self.trials);
        let _ = writeln!(out, "  max_n    {}", self.max_n);
        let _ = writeln!(out, "  threads  {}", self.threads);
        for (k, v) in &self.params {
            let _ = writeln!(out, "  param    {k} = {v}");
        }
        let _ = writeln!(out, "  wall     {:.3} ms", self.wall_ms);
        for (k, v) in &self.counters {
            let _ = writeln!(out, "  counter  {k} = {v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> RunManifest {
        RunManifest {
            command: "fig3".into(),
            seed: 42,
            trials: 1000,
            max_n: 32,
            threads: 4,
            params: vec![("tau".into(), 2.5), ("delta".into(), 0.1)],
            wall_ms: 12.75,
            counters: vec![("xengine.replace".into(), 57_344)],
        }
    }

    #[test]
    fn manifest_line_satisfies_the_stream_contract() {
        let line = sample().to_jsonl_line();
        crate::sink::validate_jsonl_line(&line).unwrap();
        let v = json::parse(&line).unwrap();
        assert_eq!(
            v.get("event").and_then(json::Value::as_str),
            Some("manifest")
        );
        assert_eq!(v.get("name").and_then(json::Value::as_str), Some("fig3"));
        let val = v.get("value").expect("value");
        assert_eq!(val.get("seed").and_then(json::Value::as_f64), Some(42.0));
        assert_eq!(val.get("threads").and_then(json::Value::as_f64), Some(4.0));
        assert_eq!(
            val.get("params")
                .and_then(|p| p.get("tau"))
                .and_then(json::Value::as_f64),
            Some(2.5)
        );
        assert_eq!(
            val.get("counters")
                .and_then(|c| c.get("xengine.replace"))
                .and_then(json::Value::as_f64),
            Some(57_344.0)
        );
    }

    #[test]
    fn footer_lists_every_field() {
        let f = sample().footer();
        for needle in [
            "command  fig3",
            "seed     42",
            "threads  4",
            "tau = 2.5",
            "xengine.replace = 57344",
        ] {
            assert!(f.contains(needle), "footer missing {needle}:\n{f}");
        }
    }
}
