//! The run manifest: the reproducibility footer written alongside CSV and
//! JSONL output so future bench regressions are diffable — which command
//! ran, with which seed and parameters, how long it took, and what the
//! counters said.

use std::fmt::Write as _;

use crate::collector::SketchSnapshot;
use crate::json::Value;

/// The host the run executed on — the metadata that distinguishes a
/// 1-core BENCH json from a 32-core one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostContext {
    /// Logical core count (`std::thread::available_parallelism`; 0 when
    /// the query fails).
    pub logical_cores: usize,
    /// The raw `HETERO_THREADS` environment override, if set.
    pub hetero_threads_env: Option<String>,
    /// The effective `target-cpu` capability the binary was compiled
    /// with, reported as the compiled-in SIMD feature set (e.g.
    /// `avx512f+avx2+fma`), or `baseline` when none apply.
    pub target_cpu: String,
}

impl HostContext {
    /// Detects the current host and build configuration.
    pub fn detect() -> Self {
        HostContext {
            logical_cores: std::thread::available_parallelism().map_or(0, |n| n.get()),
            hetero_threads_env: std::env::var("HETERO_THREADS").ok(),
            target_cpu: effective_target_cpu(),
        }
    }
}

/// The compiled-in SIMD capability string — a `cfg!(target_feature)`
/// probe, so it reflects what `-C target-cpu` actually enabled for this
/// binary (the flag itself is not observable at run time).
pub fn effective_target_cpu() -> String {
    let mut feats: Vec<&str> = Vec::new();
    if cfg!(target_feature = "avx512f") {
        feats.push("avx512f");
    }
    if cfg!(target_feature = "avx2") {
        feats.push("avx2");
    }
    if cfg!(target_feature = "fma") {
        feats.push("fma");
    }
    if cfg!(target_feature = "sse4.2") {
        feats.push("sse4.2");
    }
    if feats.is_empty() {
        "baseline".to_string()
    } else {
        feats.join("+")
    }
}

/// One run's provenance record.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    /// The CLI command (e.g. `fig3`, `all`).
    pub command: String,
    /// RNG seed in effect.
    pub seed: u64,
    /// Monte-Carlo trials per point.
    pub trials: usize,
    /// Largest cluster size swept.
    pub max_n: usize,
    /// Worker threads the parallel sweeps ran with (0 when the command
    /// predates the pool or never fanned out).
    pub threads: usize,
    /// Numeric mode of the X-measure kernels (`"strict"` or `"fast"`;
    /// empty when the producer predates numeric modes).
    pub numeric: String,
    /// Named model parameters (e.g. `tau`, `pi`, `delta`).
    pub params: Vec<(String, f64)>,
    /// Total wall time of the run, in milliseconds.
    pub wall_ms: f64,
    /// Counter and gauge totals at the end of the run.
    pub counters: Vec<(String, u64)>,
    /// Quantile-sketch summaries at the end of the run.
    pub sketches: Vec<(String, SketchSnapshot)>,
    /// Host and build metadata.
    pub host: HostContext,
}

impl RunManifest {
    /// The manifest as one JSONL event line (same `{event, name, value}`
    /// contract as the rest of the stream; `event` is `"manifest"`).
    pub fn to_jsonl_line(&self) -> String {
        let value = Value::Obj(vec![
            ("seed".into(), Value::Num(self.seed as f64)),
            ("trials".into(), Value::Num(self.trials as f64)),
            ("max_n".into(), Value::Num(self.max_n as f64)),
            ("threads".into(), Value::Num(self.threads as f64)),
            ("numeric".into(), Value::Str(self.numeric.clone())),
            (
                "params".into(),
                Value::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
            ("wall_ms".into(), Value::Num(self.wall_ms)),
            (
                "counters".into(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "sketches".into(),
                Value::Obj(
                    self.sketches
                        .iter()
                        .map(|(k, s)| {
                            (
                                k.clone(),
                                Value::Obj(vec![
                                    ("count".into(), Value::Num(s.count as f64)),
                                    ("p50".into(), Value::Num(s.p50)),
                                    ("p90".into(), Value::Num(s.p90)),
                                    ("p99".into(), Value::Num(s.p99)),
                                    ("max".into(), Value::Num(s.max)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "host".into(),
                Value::Obj(vec![
                    (
                        "logical_cores".into(),
                        Value::Num(self.host.logical_cores as f64),
                    ),
                    (
                        "hetero_threads".into(),
                        match &self.host.hetero_threads_env {
                            Some(v) => Value::Str(v.clone()),
                            None => Value::Null,
                        },
                    ),
                    (
                        "target_cpu".into(),
                        Value::Str(self.host.target_cpu.clone()),
                    ),
                ]),
            ),
        ]);
        Value::Obj(vec![
            ("event".into(), Value::Str("manifest".into())),
            ("name".into(), Value::Str(self.command.clone())),
            ("value".into(), value),
        ])
        .render()
    }

    /// The human-readable footer printed after a `--obs` run.
    pub fn footer(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "── run manifest ──");
        let _ = writeln!(out, "  command  {}", self.command);
        let _ = writeln!(out, "  seed     {}", self.seed);
        let _ = writeln!(out, "  trials   {}", self.trials);
        let _ = writeln!(out, "  max_n    {}", self.max_n);
        let _ = writeln!(out, "  threads  {}", self.threads);
        if !self.numeric.is_empty() {
            let _ = writeln!(out, "  numeric  {}", self.numeric);
        }
        for (k, v) in &self.params {
            let _ = writeln!(out, "  param    {k} = {v}");
        }
        let _ = writeln!(out, "  wall     {:.3} ms", self.wall_ms);
        let _ = writeln!(
            out,
            "  host     {} cores, HETERO_THREADS={}, target-cpu {}",
            self.host.logical_cores,
            self.host.hetero_threads_env.as_deref().unwrap_or("-"),
            self.host.target_cpu
        );
        for (k, v) in &self.counters {
            let _ = writeln!(out, "  counter  {k} = {v}");
        }
        for (k, s) in &self.sketches {
            let _ = writeln!(
                out,
                "  sketch   {k}: n={} p50={:.6} p99={:.6} max={:.6}",
                s.count, s.p50, s.p99, s.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> RunManifest {
        RunManifest {
            command: "fig3".into(),
            seed: 42,
            trials: 1000,
            max_n: 32,
            threads: 4,
            numeric: "strict".into(),
            params: vec![("tau".into(), 2.5), ("delta".into(), 0.1)],
            wall_ms: 12.75,
            counters: vec![("xengine.replace".into(), 57_344)],
            sketches: vec![(
                "protocol.send".into(),
                crate::collector::SketchSnapshot {
                    count: 10,
                    min: 1.0,
                    max: 9.0,
                    p50: 4.0,
                    p90: 8.0,
                    p99: 9.0,
                },
            )],
            host: HostContext {
                logical_cores: 8,
                hetero_threads_env: Some("2".into()),
                target_cpu: "avx2+fma".into(),
            },
        }
    }

    #[test]
    fn manifest_line_satisfies_the_stream_contract() {
        let line = sample().to_jsonl_line();
        crate::sink::validate_jsonl_line(&line).unwrap();
        let v = json::parse(&line).unwrap();
        assert_eq!(
            v.get("event").and_then(json::Value::as_str),
            Some("manifest")
        );
        assert_eq!(v.get("name").and_then(json::Value::as_str), Some("fig3"));
        let val = v.get("value").expect("value");
        assert_eq!(val.get("seed").and_then(json::Value::as_f64), Some(42.0));
        assert_eq!(val.get("threads").and_then(json::Value::as_f64), Some(4.0));
        assert_eq!(
            val.get("numeric").and_then(json::Value::as_str),
            Some("strict")
        );
        assert_eq!(
            val.get("params")
                .and_then(|p| p.get("tau"))
                .and_then(json::Value::as_f64),
            Some(2.5)
        );
        assert_eq!(
            val.get("counters")
                .and_then(|c| c.get("xengine.replace"))
                .and_then(json::Value::as_f64),
            Some(57_344.0)
        );
        let host = val.get("host").expect("host block");
        assert_eq!(
            host.get("logical_cores").and_then(json::Value::as_f64),
            Some(8.0)
        );
        assert_eq!(
            host.get("hetero_threads").and_then(json::Value::as_str),
            Some("2")
        );
        assert_eq!(
            host.get("target_cpu").and_then(json::Value::as_str),
            Some("avx2+fma")
        );
        assert_eq!(
            val.get("sketches")
                .and_then(|s| s.get("protocol.send"))
                .and_then(|s| s.get("p99"))
                .and_then(json::Value::as_f64),
            Some(9.0)
        );
    }

    #[test]
    fn unset_hetero_threads_renders_null() {
        let mut m = sample();
        m.host.hetero_threads_env = None;
        let line = m.to_jsonl_line();
        assert!(line.contains("\"hetero_threads\":null"), "{line}");
    }

    #[test]
    fn host_detection_reports_this_machine() {
        let h = HostContext::detect();
        assert!(h.logical_cores >= 1, "at least one core");
        assert!(!h.target_cpu.is_empty());
    }

    #[test]
    fn footer_lists_every_field() {
        let f = sample().footer();
        for needle in [
            "command  fig3",
            "seed     42",
            "threads  4",
            "numeric  strict",
            "tau = 2.5",
            "xengine.replace = 57344",
            "8 cores, HETERO_THREADS=2, target-cpu avx2+fma",
            "sketch   protocol.send",
        ] {
            assert!(f.contains(needle), "footer missing {needle}:\n{f}");
        }
    }
}
