//! Causal span trees and deterministic critical-path extraction.
//!
//! The protocol executors record every span with a *causal parent* (see
//! `hetero_sim::Trace::record_caused`): the span whose completion
//! enabled it. A trace is therefore a forest; the **critical path** is
//! the maximal-weight root-to-leaf chain, where a chain's weight is the
//! sum of its spans' durations. On an optimal FIFO plan the chain
//! ending at the last result arrival is temporally contiguous from
//! `t = 0`, so its weight *is* the lifespan bound of Theorem 1 — the
//! paper's scheduling argument made visible in one query.
//!
//! Extraction is a single forward pass: parents are always recorded
//! before children (ids are recording indices), so `down[i] =
//! dur(i) + down[parent(i)]` is computable in id order, and ties break
//! to the smallest id — fully deterministic for the same trace.

use hetero_sim::Trace;

/// One extracted root-to-leaf causal chain.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Span ids along the chain, root first.
    pub span_ids: Vec<usize>,
    /// Sum of the chain's span durations (sim units), Neumaier-summed.
    pub weight: f64,
    /// Start time of the chain's root span.
    pub start: f64,
    /// End time of the chain's leaf span.
    pub end: f64,
    /// `end − start` minus `weight`: total causal gap along the chain.
    /// Zero (to rounding) iff every span starts exactly when its parent
    /// ends — the signature of a bound-tight schedule.
    pub slack: f64,
}

/// Per-span cumulated root-to-here weights, in id order. Shared by the
/// extractors; exposed for tooling that wants the whole profile.
pub fn down_weights(trace: &Trace) -> Vec<f64> {
    let spans = trace.spans();
    let mut down = vec![0.0; spans.len()];
    for (i, s) in spans.iter().enumerate() {
        // Neumaier-style compensated add of this span's duration onto
        // the parent's cumulated weight, so long chains do not drift.
        let base = match trace.parent(i) {
            Some(p) => down[p],
            None => 0.0,
        };
        down[i] = neumaier2(base, s.duration());
    }
    down
}

/// The maximal-weight root-to-leaf chain of the whole trace, `None`
/// when the trace is empty. Ties break to the smallest leaf id.
pub fn critical_path(trace: &Trace) -> Option<CriticalPath> {
    let down = down_weights(trace);
    let leaf = max_index(&down, |_| true)?;
    Some(chain_to(trace, &down, leaf))
}

/// The maximal-weight chain ending at a span satisfying `pred` — e.g.
/// "the heaviest chain ending in a result transmission". `None` when no
/// span matches.
pub fn critical_path_where<F>(trace: &Trace, pred: F) -> Option<CriticalPath>
where
    F: FnMut(usize) -> bool,
{
    let down = down_weights(trace);
    let leaf = max_index(&down, pred)?;
    Some(chain_to(trace, &down, leaf))
}

/// The chain from the forest root down to span `leaf`. Returns `None`
/// for out-of-range ids.
pub fn critical_path_to(trace: &Trace, leaf: usize) -> Option<CriticalPath> {
    if leaf >= trace.spans().len() {
        return None;
    }
    let down = down_weights(trace);
    Some(chain_to(trace, &down, leaf))
}

fn max_index<F>(down: &[f64], mut keep: F) -> Option<usize>
where
    F: FnMut(usize) -> bool,
{
    let mut best: Option<usize> = None;
    for (i, &w) in down.iter().enumerate() {
        if !keep(i) {
            continue;
        }
        match best {
            // Strictly-greater comparison keeps the first (smallest id)
            // of any exact tie.
            Some(b) if w.total_cmp(&down[b]) != std::cmp::Ordering::Greater => {}
            _ => best = Some(i),
        }
    }
    best
}

fn chain_to(trace: &Trace, down: &[f64], leaf: usize) -> CriticalPath {
    let mut ids = vec![leaf];
    let mut cur = leaf;
    while let Some(p) = trace.parent(cur) {
        ids.push(p);
        cur = p;
    }
    ids.reverse();
    let spans = trace.spans();
    let start = spans[ids[0]].start.get();
    let end = spans[leaf].end.get();
    CriticalPath {
        weight: down[leaf],
        slack: (end - start) - down[leaf],
        span_ids: ids,
        start,
        end,
    }
}

/// Compensated two-term sum (Neumaier): returns `a + b` with the
/// rounding residue folded back in, adequate for chain-length
/// accumulation without pulling in the core kernels (which depend on
/// this crate and cannot be used here).
fn neumaier2(a: f64, b: f64) -> f64 {
    let s = a + b;
    let comp = if a.abs() >= b.abs() {
        (a - s) + b
    } else {
        (b - s) + a
    };
    s + comp
}

impl CriticalPath {
    /// The chain rendered as `label;label;…` (root first) — one frame
    /// path in the folded-stack format.
    pub fn folded_frames(&self, trace: &Trace) -> String {
        let spans = trace.spans();
        let mut out = String::new();
        for (k, &id) in self.span_ids.iter().enumerate() {
            if k > 0 {
                out.push(';');
            }
            out.push_str(&spans[id].label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_sim::SimTime;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    /// Two chains: a(0–1)→b(1–4) (weight 4) and c(0–2)→d(2–3) (weight 3).
    fn forest() -> Trace {
        let mut tr = Trace::new();
        let a = tr.record_caused(0, "a", t(0.0), t(1.0), None);
        tr.record_caused(1, "b", t(1.0), t(4.0), Some(a));
        let c = tr.record_caused(2, "c", t(0.0), t(2.0), None);
        tr.record_caused(3, "d", t(2.0), t(3.0), Some(c));
        tr
    }

    #[test]
    fn empty_trace_has_no_path() {
        assert_eq!(critical_path(&Trace::new()), None);
    }

    #[test]
    fn heaviest_chain_wins() {
        let tr = forest();
        let p = critical_path(&tr).expect("nonempty");
        assert_eq!(p.span_ids, vec![0, 1]);
        assert_eq!(p.weight, 4.0);
        assert_eq!((p.start, p.end), (0.0, 4.0));
        assert_eq!(p.slack, 0.0, "contiguous chain has zero slack");
        assert_eq!(p.folded_frames(&tr), "a;b");
    }

    #[test]
    fn filtered_extraction_targets_a_leaf_family() {
        let tr = forest();
        let p = critical_path_where(&tr, |i| tr.spans()[i].label == "d").expect("d exists");
        assert_eq!(p.span_ids, vec![2, 3]);
        assert_eq!(p.weight, 3.0);
    }

    #[test]
    fn chain_to_specific_leaf() {
        let tr = forest();
        let p = critical_path_to(&tr, 3).expect("in range");
        assert_eq!(p.span_ids, vec![2, 3]);
        assert_eq!(critical_path_to(&tr, 99), None);
    }

    #[test]
    fn gaps_surface_as_slack() {
        let mut tr = Trace::new();
        let a = tr.record_caused(0, "a", t(0.0), t(1.0), None);
        tr.record_caused(1, "b", t(3.0), t(4.0), Some(a)); // 2-unit gap
        let p = critical_path(&tr).expect("nonempty");
        assert_eq!(p.weight, 2.0);
        assert_eq!(p.slack, 2.0);
    }

    #[test]
    fn ties_break_to_the_smallest_id() {
        let mut tr = Trace::new();
        tr.record_caused(0, "x", t(0.0), t(2.0), None);
        tr.record_caused(1, "y", t(5.0), t(7.0), None); // same weight
        let p = critical_path(&tr).expect("nonempty");
        assert_eq!(p.span_ids, vec![0]);
    }
}
