//! The process-wide collector handle and its no-op fast path.
//!
//! Library code is instrumented unconditionally; whether the telemetry is
//! live is a process-level switch. Disabled is the default and must cost
//! almost nothing: [`enabled`] is one relaxed atomic load, and every
//! other entry point returns before touching the mutex when the switch is
//! off. The collector itself lives in a `OnceLock<Mutex<_>>` — shims-only
//! builds have no `parking_lot`, and contention is irrelevant because the
//! hot paths use the static [`counters`](crate::counters) instead.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::collector::{Collector, Snapshot, WallSpan};
use crate::counters;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn cell() -> &'static Mutex<Collector> {
    static CELL: OnceLock<Mutex<Collector>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Collector::new()))
}

/// The observability epoch: all wall-span offsets are relative to this
/// instant, first pinned by [`enable`].
fn epoch() -> Instant {
    static CELL: OnceLock<Instant> = OnceLock::new();
    *CELL.get_or_init(Instant::now)
}

fn lock() -> MutexGuard<'static, Collector> {
    // A panic while the lock is held can only poison metric data, which
    // the next reset clears — recover the guard instead of propagating.
    cell().lock().unwrap_or_else(|poison| poison.into_inner())
}

/// `true` iff telemetry is live. One relaxed atomic load — the no-op
/// fast path that keeps disabled overhead within the ≤2% budget.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry on (and pins the span epoch on first use).
pub fn enable() {
    let _ = epoch();
    // ordering: SeqCst publishes the epoch initialisation above to every thread that observes `enabled() == true`
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns telemetry off. Instrumentation becomes a no-op again; collected
/// data is kept until [`reset`].
pub fn disable() {
    // ordering: symmetric with `enable` — SeqCst keeps the flag flip ordered after in-flight counter writes
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clears all collected data, including the static hot counters. Works
/// regardless of the enable flag.
pub fn reset() {
    for c in counters::all() {
        c.clear();
    }
    *lock() = Collector::new();
}

/// Adds `delta` to a named monotone counter (no-op while disabled).
pub fn count(name: &str, delta: u64) {
    if enabled() {
        lock().count(name, delta);
    }
}

/// Raises a named high-water-mark gauge to at least `v` (no-op while
/// disabled).
pub fn gauge_max(name: &str, v: u64) {
    if enabled() {
        lock().gauge_max(name, v);
    }
}

/// Folds one observation into a named Welford accumulator (no-op while
/// disabled; NaN dropped).
pub fn observe(name: &str, v: f64) {
    if enabled() {
        lock().observe(name, v);
    }
}

/// Buckets one observation into a named fixed-width histogram created on
/// first use over `[lo, hi)` (no-op while disabled; NaN dropped). A
/// degenerate creation range is recorded as a typed error event on the
/// `obs.error.hist_range` counter by the collector — callers that need
/// the [`HistRangeError`](crate::collector::HistRangeError) itself
/// should use [`Collector::observe_hist`](Collector::observe_hist)
/// directly.
pub fn observe_hist(name: &str, v: f64, lo: f64, hi: f64, buckets: usize) {
    if enabled() {
        // The refusal is already recorded on the error counter; fire-and-
        // forget instrumentation sites have nowhere to propagate it.
        let _ = lock().observe_hist(name, v, lo, hi, buckets);
    }
}

/// Folds one observation into a named mergeable quantile sketch (no-op
/// while disabled; NaN dropped). See [`crate::sketch::QuantileSketch`].
pub fn sketch(name: &str, v: f64) {
    if enabled() {
        lock().sketch(name, v);
    }
}

/// Runs `f` against the live collector under a single lock acquisition
/// (no-op while disabled). Instrumentation sites that fold many metrics
/// at the end of a run batch them here instead of paying the lock and
/// the name lookup once per call through the free-function recorders.
pub fn with_collector(f: impl FnOnce(&mut Collector)) {
    if enabled() {
        f(&mut lock());
    }
}

/// A deterministic snapshot of everything collected so far (readable
/// regardless of the enable flag).
pub fn snapshot() -> Snapshot {
    let hot: Vec<(&'static str, u64)> = counters::all()
        .iter()
        .map(|c| (c.name(), c.get()))
        .collect();
    lock().snapshot(&hot)
}

/// Starts an RAII wall-clock span; the span is recorded when the guard
/// drops. While disabled this neither reads the clock nor allocates.
pub fn timed(name: impl Into<String>) -> TimedSpan {
    if enabled() {
        TimedSpan {
            live: Some((name.into(), Instant::now())),
        }
    } else {
        TimedSpan { live: None }
    }
}

/// Guard returned by [`timed`]; records the span on drop.
#[derive(Debug)]
pub struct TimedSpan {
    live: Option<(String, Instant)>,
}

impl TimedSpan {
    /// Ends the span now instead of at scope exit.
    pub fn finish(self) {}
}

impl Drop for TimedSpan {
    fn drop(&mut self) {
        if let Some((name, start)) = self.live.take() {
            let dur_us = start.elapsed().as_secs_f64() * 1e6;
            // `duration_since` saturates to zero for pre-epoch instants,
            // so a span racing `enable()` cannot panic here.
            let start_us = start.duration_since(epoch()).as_secs_f64() * 1e6;
            lock().record_span(WallSpan {
                name,
                start_us,
                dur_us,
            });
        }
    }
}
