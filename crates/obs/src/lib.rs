//! # hetero-obs — structured observability for the solver and simulator
//!
//! The workspace's hot paths (the incremental [`XScan`] engine, the
//! Gray-code subset search, the discrete-event loop) previously ran dark:
//! no counters, no timings, no machine-readable timelines. This crate is
//! the offline-friendly observability substrate — zero external
//! dependencies, in the style of the `shims/` crates — providing:
//!
//! * a global [`Collector`] handle with an **enable/disable no-op fast
//!   path** (one relaxed atomic load when disabled, benchmarked at ≤2%
//!   overhead on the greedy-sweep hot loop; see `BENCH_pr3.json`),
//! * [`counters`] — statically allocated hot counters for the innermost
//!   loops, plus dynamically named [`count`]/[`gauge_max`] metrics,
//! * [`observe`]/[`observe_hist`] — Welford statistics and fixed-width
//!   histograms reusing `hetero_sim::stats`,
//! * [`timed`] — RAII wall-clock spans,
//! * [`sketch`] — mergeable log-bucketed quantile sketches
//!   ([`sketch::QuantileSketch`]) with deterministic p50/p90/p99/max,
//! * [`causal`] — critical-path extraction over the simulator's causal
//!   span trees, with an inferno-compatible folded-stack exporter
//!   ([`folded`]) beside the Chrome one,
//! * [`diff`] — the regression observatory backing `hetero-cli obsdiff`:
//!   load two runs, diff counters/spans/quantiles under noise
//!   thresholds, exit nonzero on regression,
//! * sinks: a human summary table ([`Snapshot::summary`]), a JSON-lines
//!   event stream ([`Snapshot::to_jsonl`], every line
//!   `{"event", "name", "value"}`), and a Chrome trace-event exporter
//!   ([`chrome`]) that turns a simulator [`Trace`] into a
//!   `chrome://tracing` / Perfetto-loadable action/time diagram — the
//!   paper's Figures 1–2 as profiler artifacts.
//!
//! Instrumentation sites must tolerate the collector being off: every
//! entry point checks [`enabled`] first and is a no-op (no lock, no
//! allocation) when observability is disabled, so library code can be
//! instrumented unconditionally.
//!
//! ```
//! hetero_obs::enable();
//! hetero_obs::reset();
//! hetero_obs::count("demo.widgets", 3);
//! {
//!     let _span = hetero_obs::timed("demo.phase");
//! } // span recorded on drop
//! let snap = hetero_obs::snapshot();
//! assert_eq!(snap.counter("demo.widgets"), 3);
//! for line in snap.to_jsonl().lines() {
//!     assert!(hetero_obs::sink::validate_jsonl_line(line).is_ok());
//! }
//! hetero_obs::disable();
//! ```
//!
//! [`XScan`]: https://docs.rs/hetero-core
//! [`Trace`]: hetero_sim::Trace
//! [`Collector`]: collector::Collector

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod chrome;
pub mod collector;
pub mod counters;
pub mod diff;
pub mod folded;
mod global;
pub mod json;
pub mod manifest;
pub mod sink;
pub mod sketch;

pub use collector::{
    Collector, HistRangeError, HistSnapshot, SketchSnapshot, Snapshot, ValueStats, WallSpan,
};
pub use global::{
    count, disable, enable, enabled, gauge_max, observe, observe_hist, reset, sketch, snapshot,
    timed, with_collector, TimedSpan,
};
pub use manifest::{HostContext, RunManifest};
