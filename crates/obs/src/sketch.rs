//! Mergeable log-bucketed quantile sketches (HDR-histogram style).
//!
//! A [`QuantileSketch`] buckets positive observations into *fixed*
//! geometric bins with ratio `GAMMA = 2^(1/8)` (≈ 9.05% relative width),
//! anchored at 1.0. The bucket boundaries are global constants, never
//! derived from the data, which buys three properties the ad-hoc
//! `FixedHistogram` cannot offer for latencies:
//!
//! * **Exact merge.** Two sketches over the same (universal) boundary
//!   grid merge by integer bucket-count addition plus min/max folds —
//!   associative, commutative, and lossless with respect to the
//!   individual sketches' quantile answers.
//! * **Insertion-order determinism.** The state is integer counts and
//!   exact min/max; any permutation of the same observations yields a
//!   bit-identical sketch.
//! * **Bounded relative error.** A reported quantile is the geometric
//!   midpoint of the bucket holding the target rank, so it is within a
//!   factor `GAMMA^(1/2)` (≈ 4.4%) of some sample at that rank — the
//!   property the proptest oracle checks.
//!
//! The dynamic range spans `GAMMA^LO_EXP ≈ 5e-10` to `GAMMA^HI_EXP ≈
//! 8.9e9`; values at or below zero (and underflows) land in a dedicated
//! `low` bucket reported as the exact minimum, overflows in a `high`
//! bucket reported as the exact maximum. NaN is dropped.

/// Geometric bucket ratio: `2^(1/8)`, so eight buckets per octave.
pub const GAMMA: f64 = 1.090_507_732_665_257_7;

/// Log₂ resolution: buckets per factor-of-two.
const PER_OCTAVE: i32 = 8;

/// Lowest finite bucket exponent (`GAMMA^LO_EXP` ≈ 5.4e-10).
const LO_EXP: i32 = -248;

/// Highest finite bucket exponent (`GAMMA^HI_EXP` ≈ 8.9e9).
const HI_EXP: i32 = 264;

/// Number of finite buckets.
const N_BUCKETS: usize = (HI_EXP - LO_EXP) as usize;

/// A mergeable quantile sketch over fixed log-spaced buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    low: u64,
    high: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            counts: vec![0; N_BUCKETS],
            low: 0,
            high: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index for a positive, in-range `v`:
    /// `floor(8·log₂ v) − LO_EXP`, clamped into the finite grid.
    fn bucket_of(v: f64) -> usize {
        let e = (v.log2() * PER_OCTAVE as f64).floor() as i64;
        let e = e.clamp(LO_EXP as i64, (HI_EXP - 1) as i64);
        (e - LO_EXP as i64) as usize
    }

    /// Records one observation. NaN is dropped; non-positive values go
    /// to the `low` bucket; values past the grid go to `low`/`high`.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < gamma_pow(LO_EXP) {
            // Zero, negative, and sub-grid values all land in `low`.
            self.low += 1;
        } else if v >= gamma_pow(HI_EXP) {
            self.high += 1;
        } else {
            self.counts[Self::bucket_of(v)] += 1;
        }
    }

    /// Merges `other` into `self` — exact: pure integer addition over
    /// the shared boundary grid plus min/max folds.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.low += other.low;
        self.high += other.high;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Exact maximum observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) by the nearest-rank rule
    /// `rank = floor(q·(count−1))`: the geometric midpoint of the bucket
    /// holding that rank, clamped into `[min, max]`; the `low`/`high`
    /// buckets answer with the exact extremes. `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || q.is_nan() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        if rank < self.low {
            return self.min;
        }
        let mut seen = self.low;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank < seen {
                let lo = gamma_pow(LO_EXP + i as i32);
                let mid = lo * SQRT_GAMMA;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// `GAMMA^(1/2)` — bucket lower bound → geometric midpoint.
const SQRT_GAMMA: f64 = 1.044_273_782_427_413_8;

/// `GAMMA^e` computed as `2^(e/8)` so boundaries are reproducible
/// bit-for-bit from the exponent alone.
fn gamma_pow(e: i32) -> f64 {
    (e as f64 / PER_OCTAVE as f64).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_answers_nan() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert!(s.p50().is_nan() && s.min().is_nan() && s.max().is_nan());
    }

    #[test]
    fn quantiles_track_a_uniform_ladder() {
        let mut s = QuantileSketch::new();
        for i in 1..=1000 {
            s.record(i as f64);
        }
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 1000.0);
        for (q, expect) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = s.quantile(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.06, "q={q}: got {got}, want ≈{expect} (rel {rel})");
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut whole = QuantileSketch::new();
        for i in 0..500 {
            let v = 1.5f64.powi(i % 40) * 1e-3;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge must be exact");
    }

    #[test]
    fn out_of_range_and_nonpositive_use_exact_extremes() {
        let mut s = QuantileSketch::new();
        s.record(0.0);
        s.record(-3.0);
        s.record(1e300); // overflow bucket
        s.record(1e-300); // underflow bucket
        s.record(f64::NAN); // dropped
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), -3.0);
        assert_eq!(s.max(), 1e300);
        assert_eq!(s.quantile(0.0), -3.0);
        assert_eq!(s.quantile(1.0), 1e300);
    }

    #[test]
    fn single_value_quantiles_are_that_value_region() {
        let mut s = QuantileSketch::new();
        s.record(42.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = s.quantile(q);
            assert_eq!(got, 42.0, "clamped into [min, max] collapses to 42");
        }
    }
}
