//! Chrome trace-event JSON export.
//!
//! Turns a simulator [`Trace`] (the paper's Figure 1–2 action/time
//! diagrams) or a set of collector wall spans into the Trace Event Format
//! consumed by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! one complete-duration (`"ph":"X"`) event per span, entities mapped to
//! thread lanes, with `thread_name` metadata so lanes carry the paper's
//! row labels (`server`, `C1`, …, `net`). Timestamps are microseconds; a
//! simulated time unit is exported as one millisecond (1000 µs) so the
//! dimensionless `SimTime` axis stays readable in the viewer.
//!
//! Output is deterministic — fixed key order, recording-order events,
//! shortest-roundtrip float text — which is what the golden-file test
//! pins.

use hetero_sim::Trace;

use crate::collector::WallSpan;
use crate::json::Value;

/// Microseconds per simulated time unit in the exported trace (shared
/// with the folded-stack exporter so both render the same scale).
pub const SIM_UNIT_US: f64 = 1000.0;

fn event(name: &str, cat: &str, ts_us: f64, dur_us: f64, tid: usize) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::Str(name.into())),
        ("cat".into(), Value::Str(cat.into())),
        ("ph".into(), Value::Str("X".into())),
        ("ts".into(), Value::Num(ts_us)),
        ("dur".into(), Value::Num(dur_us)),
        ("pid".into(), Value::Num(0.0)),
        ("tid".into(), Value::Num(tid as f64)),
    ])
}

fn thread_name(tid: usize, label: &str) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::Str("thread_name".into())),
        ("ph".into(), Value::Str("M".into())),
        ("pid".into(), Value::Num(0.0)),
        ("tid".into(), Value::Num(tid as f64)),
        (
            "args".into(),
            Value::Obj(vec![("name".into(), Value::Str(label.into()))]),
        ),
    ])
}

fn document(events: Vec<Value>) -> String {
    Value::Obj(vec![
        ("displayTimeUnit".into(), Value::Str("ms".into())),
        ("traceEvents".into(), Value::Arr(events)),
    ])
    .render()
}

/// Exports a simulator trace as Chrome trace-event JSON. `entity_names`
/// labels the lanes by entity index (missing entries fall back to `E<i>`);
/// only entities that actually recorded spans get a lane.
pub fn sim_trace_to_chrome(trace: &Trace, entity_names: &[String]) -> String {
    let mut entities: Vec<usize> = trace.spans().iter().map(|s| s.entity).collect();
    entities.sort_unstable();
    entities.dedup();
    let mut events = Vec::new();
    for &e in &entities {
        let fallback = format!("E{e}");
        let label = entity_names.get(e).map(String::as_str).unwrap_or(&fallback);
        events.push(thread_name(e, label));
    }
    for span in trace.spans() {
        events.push(event(
            &span.label,
            "sim",
            span.start.get() * SIM_UNIT_US,
            span.duration() * SIM_UNIT_US,
            span.entity,
        ));
    }
    document(events)
}

/// Exports collector wall spans (already in µs) as Chrome trace-event
/// JSON on a single lane — the per-command timeline of a CLI run.
pub fn wall_spans_to_chrome(spans: &[WallSpan]) -> String {
    let mut events = vec![thread_name(0, "hetero-cli")];
    for span in spans {
        events.push(event(&span.name, "wall", span.start_us, span.dur_us, 0));
    }
    document(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use hetero_sim::SimTime;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    #[test]
    fn exports_lanes_and_complete_events() {
        let mut tr = Trace::new();
        tr.record(0, "pack→C1", t(0.0), t(0.5));
        tr.record(1, "compute", t(1.0), t(3.0));
        let text = sim_trace_to_chrome(&tr, &["server".into(), "C1".into()]);
        let doc = json::parse(&text).unwrap();
        let events = match doc.get("traceEvents") {
            Some(json::Value::Arr(evs)) => evs.clone(),
            other => panic!("traceEvents missing: {other:?}"),
        };
        // Two thread_name metadata events plus two spans.
        assert_eq!(events.len(), 4);
        let meta: Vec<&json::Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
        assert_eq!(
            meta[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(json::Value::as_str),
            Some("server")
        );
        let xs: Vec<&json::Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].get("ts").and_then(json::Value::as_f64), Some(0.0));
        assert_eq!(xs[0].get("dur").and_then(json::Value::as_f64), Some(500.0));
        assert_eq!(xs[1].get("tid").and_then(json::Value::as_f64), Some(1.0));
    }

    #[test]
    fn unnamed_entities_get_fallback_lanes() {
        let mut tr = Trace::new();
        tr.record(7, "work", t(0.0), t(1.0));
        let text = sim_trace_to_chrome(&tr, &[]);
        assert!(text.contains("\"E7\""));
    }

    #[test]
    fn wall_spans_export_on_one_lane() {
        let spans = vec![WallSpan {
            name: "cli.fig3".into(),
            start_us: 5.0,
            dur_us: 100.0,
        }];
        let doc = json::parse(&wall_spans_to_chrome(&spans)).unwrap();
        let events = match doc.get("traceEvents") {
            Some(json::Value::Arr(evs)) => evs.clone(),
            _ => panic!("no events"),
        };
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1].get("name").and_then(json::Value::as_str),
            Some("cli.fig3")
        );
    }
}
