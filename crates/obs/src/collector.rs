//! The metric store: counters, gauges, value statistics, histograms, and
//! wall-clock spans, plus the immutable [`Snapshot`] view handed to sinks.
//!
//! All maps are `BTreeMap`s so every snapshot (and therefore every sink
//! rendering) is deterministically ordered — a prerequisite for the
//! golden-file and same-seed-determinism tests.

use std::collections::BTreeMap;

use hetero_sim::stats::{FixedHistogram, OnlineStats};

/// One completed RAII wall-clock span (microseconds since the process
/// observability epoch).
#[derive(Debug, Clone, PartialEq)]
pub struct WallSpan {
    /// Span name (e.g. `cli.fig3`).
    pub name: String,
    /// Start offset from the observability epoch, in µs.
    pub start_us: f64,
    /// Duration in µs.
    pub dur_us: f64,
}

/// The mutable metric store behind the global handle.
///
/// Usually accessed through the crate-level free functions
/// ([`count`](crate::count), [`observe`](crate::observe), …); constructed
/// directly only in tests and single-threaded tools.
#[derive(Debug, Default)]
pub struct Collector {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    values: BTreeMap<String, OnlineStats>,
    hists: BTreeMap<String, FixedHistogram>,
    spans: Vec<WallSpan>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named monotone counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Raises the named high-water-mark gauge to at least `v`.
    pub fn gauge_max(&mut self, name: &str, v: u64) {
        if let Some(slot) = self.gauges.get_mut(name) {
            *slot = (*slot).max(v);
        } else {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Folds one observation into the named Welford accumulator. NaN
    /// observations are dropped (they would poison the statistics).
    pub fn observe(&mut self, name: &str, v: f64) {
        if v.is_nan() {
            return;
        }
        if let Some(stats) = self.values.get_mut(name) {
            stats.push(v);
        } else {
            let mut stats = OnlineStats::new();
            stats.push(v);
            self.values.insert(name.to_string(), stats);
        }
    }

    /// Buckets one observation into the named fixed-width histogram,
    /// created on first use over `[lo, hi)` with `buckets` bins. Later
    /// calls keep the first range; NaN and invalid ranges are dropped.
    pub fn observe_hist(&mut self, name: &str, v: f64, lo: f64, hi: f64, buckets: usize) {
        if v.is_nan() {
            return;
        }
        if let Some(h) = self.hists.get_mut(name) {
            h.push(v);
            return;
        }
        // NaN bounds fall through to the refusal branch.
        let range_ok = matches!(hi.partial_cmp(&lo), Some(std::cmp::Ordering::Greater));
        if !range_ok || buckets == 0 {
            return; // FixedHistogram::new would panic; refuse quietly
        }
        let mut h = FixedHistogram::new(lo, hi, buckets);
        h.push(v);
        self.hists.insert(name.to_string(), h);
    }

    /// Appends one completed wall-clock span.
    pub fn record_span(&mut self, span: WallSpan) {
        self.spans.push(span);
    }

    /// A deterministic snapshot, folding in the static hot counters
    /// (name → value pairs) alongside the dynamic ones.
    pub fn snapshot(&self, hot: &[(&'static str, u64)]) -> Snapshot {
        let mut counters: BTreeMap<String, u64> = self.counters.clone();
        for &(name, v) in hot {
            if let Some(slot) = counters.get_mut(name) {
                *slot += v;
            } else {
                counters.insert(name.to_string(), v);
            }
        }
        Snapshot {
            counters: counters.into_iter().collect(),
            gauges: self.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            values: self
                .values
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        ValueStats {
                            count: s.count(),
                            mean: s.mean(),
                            stddev: s.stddev(),
                            min: s.min(),
                            max: s.max(),
                        },
                    )
                })
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistSnapshot {
                            total: h.total(),
                            buckets: h.iter().collect(),
                        },
                    )
                })
                .collect(),
            spans: self.spans.clone(),
        }
    }
}

/// Summary statistics of one observed value stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueStats {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

/// Bucketed view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Total observations recorded.
    pub total: u64,
    /// `(bucket_lo, count)` pairs in range order.
    pub buckets: Vec<(f64, u64)>,
}

/// An immutable, deterministically ordered view of the collector. All
/// sequences are sorted by metric name (spans stay in recording order).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotone counters (dynamic and static, merged), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// High-water-mark gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Welford value statistics, sorted by name.
    pub values: Vec<(String, ValueStats)>,
    /// Histograms, sorted by name.
    pub hists: Vec<(String, HistSnapshot)>,
    /// Completed wall-clock spans, in recording order.
    pub spans: Vec<WallSpan>,
}

impl Snapshot {
    /// The value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The value of a gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Counters and gauges merged into one ordered list — the
    /// wall-clock-free portion of a run, used by the same-seed
    /// determinism test (two identical runs must produce identical
    /// fingerprints, timings excluded).
    pub fn counter_fingerprint(&self) -> Vec<(String, u64)> {
        let mut out = self.counters.clone();
        out.extend(self.gauges.iter().cloned());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge_hot() {
        let mut c = Collector::new();
        c.count("a", 2);
        c.count("a", 3);
        c.count("b", 1);
        let snap = c.snapshot(&[("a", 10), ("z", 4)]);
        assert_eq!(snap.counter("a"), 15);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("z"), 4);
        assert_eq!(snap.counter("missing"), 0);
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a", "b", "z"], "sorted by name");
    }

    #[test]
    fn gauge_keeps_the_maximum() {
        let mut c = Collector::new();
        c.gauge_max("hw", 3);
        c.gauge_max("hw", 7);
        c.gauge_max("hw", 5);
        assert_eq!(c.snapshot(&[]).gauge("hw"), 7);
    }

    #[test]
    fn observe_folds_welford_and_drops_nan() {
        let mut c = Collector::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            c.observe("x", v);
        }
        c.observe("x", f64::NAN);
        let snap = c.snapshot(&[]);
        let (_, s) = &snap.values[0];
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!((s.min, s.max), (1.0, 4.0));
    }

    #[test]
    fn histogram_first_range_wins_and_bad_range_refused() {
        let mut c = Collector::new();
        c.observe_hist("h", 0.1, 0.0, 1.0, 4);
        c.observe_hist("h", 0.9, 5.0, 6.0, 2); // later range ignored
        c.observe_hist("bad", 1.0, 1.0, 1.0, 4); // would panic in new()
        let snap = c.snapshot(&[]);
        assert_eq!(snap.hists.len(), 1);
        let (name, h) = &snap.hists[0];
        assert_eq!(name, "h");
        assert_eq!(h.total, 2);
        assert_eq!(h.buckets.len(), 4);
    }

    #[test]
    fn fingerprint_merges_counters_and_gauges() {
        let mut c = Collector::new();
        c.count("n", 2);
        c.gauge_max("g", 9);
        let fp = c.snapshot(&[]).counter_fingerprint();
        assert_eq!(fp, vec![("n".to_string(), 2), ("g".to_string(), 9)]);
    }
}
