//! The metric store: counters, gauges, value statistics, histograms, and
//! wall-clock spans, plus the immutable [`Snapshot`] view handed to sinks.
//!
//! All maps are `BTreeMap`s so every snapshot (and therefore every sink
//! rendering) is deterministically ordered — a prerequisite for the
//! golden-file and same-seed-determinism tests.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use hetero_sim::stats::{FixedHistogram, OnlineStats};

use crate::sketch::QuantileSketch;

/// One completed RAII wall-clock span (microseconds since the process
/// observability epoch).
#[derive(Debug, Clone, PartialEq)]
pub struct WallSpan {
    /// Span name (e.g. `cli.fig3`).
    pub name: String,
    /// Start offset from the observability epoch, in µs.
    pub start_us: f64,
    /// Duration in µs.
    pub dur_us: f64,
}

/// The mutable metric store behind the global handle.
///
/// Usually accessed through the crate-level free functions
/// ([`count`](crate::count), [`observe`](crate::observe), …); constructed
/// directly only in tests and single-threaded tools.
#[derive(Debug, Default)]
pub struct Collector {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    values: BTreeMap<String, OnlineStats>,
    hists: BTreeMap<String, FixedHistogram>,
    sketches: BTreeMap<String, QuantileSketch>,
    spans: Vec<WallSpan>,
}

/// Typed rejection of a degenerate histogram range: `lo >= hi` (or a
/// NaN bound) or zero buckets would make `FixedHistogram::new` panic.
/// The refusal is also recorded on the `obs.error.hist_range` counter so
/// misconfigured instrumentation is visible in the event stream instead
/// of silently producing nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct HistRangeError {
    /// The histogram that was being created.
    pub name: String,
    /// The offending lower bound.
    pub lo: f64,
    /// The offending upper bound.
    pub hi: f64,
    /// The offending bucket count.
    pub buckets: usize,
}

impl fmt::Display for HistRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degenerate histogram range for `{}`: [{}, {}) with {} buckets",
            self.name, self.lo, self.hi, self.buckets
        )
    }
}

impl Error for HistRangeError {}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named monotone counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Raises the named high-water-mark gauge to at least `v`.
    pub fn gauge_max(&mut self, name: &str, v: u64) {
        if let Some(slot) = self.gauges.get_mut(name) {
            *slot = (*slot).max(v);
        } else {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Folds one observation into the named Welford accumulator. NaN
    /// observations are dropped (they would poison the statistics).
    pub fn observe(&mut self, name: &str, v: f64) {
        if v.is_nan() {
            return;
        }
        if let Some(stats) = self.values.get_mut(name) {
            stats.push(v);
        } else {
            let mut stats = OnlineStats::new();
            stats.push(v);
            self.values.insert(name.to_string(), stats);
        }
    }

    /// Buckets one observation into the named fixed-width histogram,
    /// created on first use over `[lo, hi)` with `buckets` bins. Later
    /// calls keep the first range; NaN observations are dropped. A
    /// degenerate creation range (`lo >= hi`, NaN bound, or zero
    /// buckets) returns a typed [`HistRangeError`] and bumps the
    /// `obs.error.hist_range` counter — the histogram is not created.
    pub fn observe_hist(
        &mut self,
        name: &str,
        v: f64,
        lo: f64,
        hi: f64,
        buckets: usize,
    ) -> Result<(), HistRangeError> {
        if v.is_nan() {
            return Ok(());
        }
        if let Some(h) = self.hists.get_mut(name) {
            h.push(v);
            return Ok(());
        }
        // NaN bounds fall through to the refusal branch.
        let range_ok = matches!(hi.partial_cmp(&lo), Some(std::cmp::Ordering::Greater));
        if !range_ok || buckets == 0 {
            self.count("obs.error.hist_range", 1);
            return Err(HistRangeError {
                name: name.to_string(),
                lo,
                hi,
                buckets,
            });
        }
        let mut h = FixedHistogram::new(lo, hi, buckets);
        h.push(v);
        self.hists.insert(name.to_string(), h);
        Ok(())
    }

    /// Folds one observation into the named mergeable quantile sketch
    /// (see [`QuantileSketch`]); NaN is dropped by the sketch itself.
    pub fn sketch(&mut self, name: &str, v: f64) {
        if let Some(s) = self.sketches.get_mut(name) {
            s.record(v);
        } else {
            let mut s = QuantileSketch::new();
            s.record(v);
            self.sketches.insert(name.to_string(), s);
        }
    }

    /// Merges a pre-aggregated Welford accumulator into the named slot —
    /// the batch hook for sites that fold many observations per run
    /// (one merge per run instead of one lock per observation).
    pub fn merge_observations(&mut self, name: &str, other: &OnlineStats) {
        if other.count() == 0 {
            return;
        }
        if let Some(stats) = self.values.get_mut(name) {
            stats.merge(other);
        } else {
            self.values.insert(name.to_string(), other.clone());
        }
    }

    /// Merges another sketch into the named slot — the aggregation hook
    /// for per-shard collectors.
    pub fn merge_sketch(&mut self, name: &str, other: &QuantileSketch) {
        if let Some(s) = self.sketches.get_mut(name) {
            s.merge(other);
        } else {
            self.sketches.insert(name.to_string(), other.clone());
        }
    }

    /// Appends one completed wall-clock span.
    pub fn record_span(&mut self, span: WallSpan) {
        self.spans.push(span);
    }

    /// A deterministic snapshot, folding in the static hot counters
    /// (name → value pairs) alongside the dynamic ones.
    pub fn snapshot(&self, hot: &[(&'static str, u64)]) -> Snapshot {
        let mut counters: BTreeMap<String, u64> = self.counters.clone();
        for &(name, v) in hot {
            if let Some(slot) = counters.get_mut(name) {
                *slot += v;
            } else {
                counters.insert(name.to_string(), v);
            }
        }
        Snapshot {
            counters: counters.into_iter().collect(),
            gauges: self.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            values: self
                .values
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        ValueStats {
                            count: s.count(),
                            mean: s.mean(),
                            stddev: s.stddev(),
                            min: s.min(),
                            max: s.max(),
                        },
                    )
                })
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistSnapshot {
                            total: h.total(),
                            buckets: h.iter().collect(),
                        },
                    )
                })
                .collect(),
            sketches: self
                .sketches
                .iter()
                .map(|(k, s)| (k.clone(), SketchSnapshot::of(s)))
                .collect(),
            spans: self.spans.clone(),
        }
    }
}

/// Summary statistics of one observed value stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueStats {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

/// Bucketed view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Total observations recorded.
    pub total: u64,
    /// `(bucket_lo, count)` pairs in range order.
    pub buckets: Vec<(f64, u64)>,
}

/// Quantile summary of one sketch — the SLO view the JSONL sink and the
/// run manifest carry.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchSnapshot {
    /// Total observations recorded.
    pub count: u64,
    /// Exact minimum observation.
    pub min: f64,
    /// Exact maximum observation.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl SketchSnapshot {
    /// Summarizes a sketch.
    pub fn of(s: &QuantileSketch) -> Self {
        SketchSnapshot {
            count: s.count(),
            min: s.min(),
            max: s.max(),
            p50: s.p50(),
            p90: s.p90(),
            p99: s.p99(),
        }
    }
}

/// An immutable, deterministically ordered view of the collector. All
/// sequences are sorted by metric name (spans stay in recording order).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotone counters (dynamic and static, merged), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// High-water-mark gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Welford value statistics, sorted by name.
    pub values: Vec<(String, ValueStats)>,
    /// Histograms, sorted by name.
    pub hists: Vec<(String, HistSnapshot)>,
    /// Quantile sketches, sorted by name.
    pub sketches: Vec<(String, SketchSnapshot)>,
    /// Completed wall-clock spans, in recording order.
    pub spans: Vec<WallSpan>,
}

impl Snapshot {
    /// The value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The value of a gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Counters and gauges merged into one ordered list — the
    /// wall-clock-free portion of a run, used by the same-seed
    /// determinism test (two identical runs must produce identical
    /// fingerprints, timings excluded).
    pub fn counter_fingerprint(&self) -> Vec<(String, u64)> {
        let mut out = self.counters.clone();
        out.extend(self.gauges.iter().cloned());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge_hot() {
        let mut c = Collector::new();
        c.count("a", 2);
        c.count("a", 3);
        c.count("b", 1);
        let snap = c.snapshot(&[("a", 10), ("z", 4)]);
        assert_eq!(snap.counter("a"), 15);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("z"), 4);
        assert_eq!(snap.counter("missing"), 0);
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a", "b", "z"], "sorted by name");
    }

    #[test]
    fn gauge_keeps_the_maximum() {
        let mut c = Collector::new();
        c.gauge_max("hw", 3);
        c.gauge_max("hw", 7);
        c.gauge_max("hw", 5);
        assert_eq!(c.snapshot(&[]).gauge("hw"), 7);
    }

    #[test]
    fn observe_folds_welford_and_drops_nan() {
        let mut c = Collector::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            c.observe("x", v);
        }
        c.observe("x", f64::NAN);
        let snap = c.snapshot(&[]);
        let (_, s) = &snap.values[0];
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!((s.min, s.max), (1.0, 4.0));
    }

    #[test]
    fn histogram_first_range_wins_and_bad_range_refused() {
        let mut c = Collector::new();
        assert!(c.observe_hist("h", 0.1, 0.0, 1.0, 4).is_ok());
        // Later range ignored: the first histogram keeps its bounds.
        assert!(c.observe_hist("h", 0.9, 5.0, 6.0, 2).is_ok());
        let err = c.observe_hist("bad", 1.0, 1.0, 1.0, 4).unwrap_err();
        assert_eq!(
            err,
            HistRangeError {
                name: "bad".into(),
                lo: 1.0,
                hi: 1.0,
                buckets: 4
            }
        );
        assert!(err.to_string().contains("degenerate"));
        let snap = c.snapshot(&[]);
        assert_eq!(snap.hists.len(), 1);
        let (name, h) = &snap.hists[0];
        assert_eq!(name, "h");
        assert_eq!(h.total, 2);
        assert_eq!(h.buckets.len(), 4);
        assert_eq!(
            snap.counter("obs.error.hist_range"),
            1,
            "refusal lands on the error counter"
        );
    }

    #[test]
    fn degenerate_hist_errors_cover_every_cause() {
        let mut c = Collector::new();
        assert!(c.observe_hist("a", 0.5, 2.0, 1.0, 4).is_err()); // lo > hi
        assert!(c.observe_hist("b", 0.5, f64::NAN, 1.0, 4).is_err()); // NaN bound
        assert!(c.observe_hist("c", 0.5, 0.0, 1.0, 0).is_err()); // zero buckets
        assert!(c.observe_hist("d", f64::NAN, 2.0, 1.0, 4).is_ok()); // NaN obs dropped first
        let snap = c.snapshot(&[]);
        assert_eq!(snap.counter("obs.error.hist_range"), 3);
        assert!(snap.hists.is_empty());
    }

    #[test]
    fn sketches_snapshot_with_quantiles() {
        let mut c = Collector::new();
        for i in 1..=100 {
            c.sketch("lat", i as f64);
        }
        let snap = c.snapshot(&[]);
        assert_eq!(snap.sketches.len(), 1);
        let (name, s) = &snap.sketches[0];
        assert_eq!(name, "lat");
        assert_eq!(s.count, 100);
        assert_eq!((s.min, s.max), (1.0, 100.0));
        assert!(
            (s.p50 - 50.0).abs() / 50.0 < 0.06,
            "p50 ≈ 50, got {}",
            s.p50
        );
        assert!(
            (s.p99 - 99.0).abs() / 99.0 < 0.06,
            "p99 ≈ 99, got {}",
            s.p99
        );
    }

    #[test]
    fn merge_sketch_aggregates_shards() {
        let mut shard = crate::sketch::QuantileSketch::new();
        shard.record(5.0);
        let mut c = Collector::new();
        c.sketch("lat", 1.0);
        c.merge_sketch("lat", &shard);
        c.merge_sketch("other", &shard);
        let snap = c.snapshot(&[]);
        assert_eq!(snap.sketches[0].1.count, 2);
        assert_eq!(snap.sketches[1].1.count, 1);
    }

    #[test]
    fn fingerprint_merges_counters_and_gauges() {
        let mut c = Collector::new();
        c.count("n", 2);
        c.gauge_max("g", 9);
        let fp = c.snapshot(&[]).counter_fingerprint();
        assert_eq!(fp, vec![("n".to_string(), 2), ("g".to_string(), 9)]);
    }
}
