//! Inferno-compatible folded-stack export of causal span trees.
//!
//! The folded-stack format (`inferno` / Brendan Gregg's
//! `flamegraph.pl`) is one line per stack:
//! `frame;frame;…;frame <weight>`, weights in integer units. This
//! module renders a causal [`Trace`] as such a profile: every span
//! becomes one line whose frames are the labels along its causal chain
//! (root first, each frame prefixed by the entity's lane name) and
//! whose weight is the span's **self time** in integer microseconds:
//! its duration minus the time its causal children were simultaneously
//! running. Sequential causal successors (the common case — a transmit
//! *follows* the pack that caused it) overlap nothing and keep their
//! full duration, while nested spans surrender the overlapped portion
//! to the child, so a frame's rendered width is the total time causally
//! downstream of it — the same quantity the critical-path extractor
//! maximizes.
//!
//! Lines are emitted in span-id order and zero-weight lines are
//! skipped; the output is byte-deterministic for the same trace. The
//! time scale matches the Chrome exporter: 1 sim unit = 1 ms = 1000 µs
//! (see [`crate::chrome::SIM_UNIT_US`]).

use crate::chrome::SIM_UNIT_US;
use hetero_sim::Trace;

/// Renders `trace` in folded-stack format. `entity_names[i]` names
/// entity `i`'s lane; out-of-range entities fall back to `E<i>`,
/// exactly like the Chrome exporter.
pub fn trace_to_folded(trace: &Trace, entity_names: &[String]) -> String {
    let spans = trace.spans();
    // Time each span's causal children spent running *inside* its own
    // interval — subtracted below so nested spans don't double-count.
    let mut child_time = vec![0.0f64; spans.len()];
    for (i, s) in spans.iter().enumerate() {
        if let Some(p) = trace.parent(i) {
            let parent = &spans[p];
            let overlap = (s.end.get().min(parent.end.get())
                - s.start.get().max(parent.start.get()))
            .max(0.0);
            // hetero-check: allow(float-accum) — a span has O(1) causal children and the sum is rounded to whole µs below
            child_time[p] += overlap;
        }
    }
    let mut out = String::new();
    for (i, s) in spans.iter().enumerate() {
        let self_us = ((s.duration() - child_time[i]) * SIM_UNIT_US).round();
        if self_us <= 0.0 {
            continue;
        }
        let mut frames: Vec<usize> = vec![i];
        let mut cur = i;
        while let Some(p) = trace.parent(cur) {
            frames.push(p);
            cur = p;
        }
        frames.reverse();
        for (k, &id) in frames.iter().enumerate() {
            if k > 0 {
                out.push(';');
            }
            let sp = &spans[id];
            match entity_names.get(sp.entity) {
                Some(name) => out.push_str(name),
                None => out.push_str(&format!("E{}", sp.entity)),
            }
            out.push(':');
            out.push_str(&sp.label);
        }
        out.push(' ');
        out.push_str(&format!("{}", self_us as u64));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_sim::SimTime;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    #[test]
    fn chains_fold_with_self_time_weights() {
        let mut tr = Trace::new();
        let a = tr.record_caused(0, "pack", t(0.0), t(1.0), None);
        let b = tr.record_caused(2, "xmit", t(1.0), t(3.0), Some(a));
        tr.record_caused(1, "compute", t(3.0), t(6.0), Some(b));
        let names = vec!["C0".to_string(), "C1".to_string(), "net".to_string()];
        let folded = trace_to_folded(&tr, &names);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "C0:pack 1000",
                "C0:pack;net:xmit 2000",
                "C0:pack;net:xmit;C1:compute 3000",
            ]
        );
    }

    #[test]
    fn zero_self_time_spans_are_skipped() {
        let mut tr = Trace::new();
        // Parent fully covered by its child: zero self time.
        let a = tr.record_caused(0, "outer", t(0.0), t(2.0), None);
        tr.record_caused(0, "inner", t(0.0), t(2.0), Some(a));
        let folded = trace_to_folded(&tr, &[]);
        assert_eq!(folded, "E0:outer;E0:inner 2000\n");
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert_eq!(trace_to_folded(&Trace::new(), &[]), "");
    }
}
