//! Statically allocated hot-path counters.
//!
//! The innermost solver loops cannot afford a mutex or a map lookup per
//! event — an O(1) `XScan::replace` query runs in ~10 ns. Each hot site
//! therefore gets a dedicated static [`HotCounter`]: when observability is
//! disabled a bump is one relaxed atomic load plus a predictable branch;
//! when enabled it is one relaxed `fetch_add`. The global
//! [`snapshot`](crate::snapshot) folds these statics into the dynamic
//! collector's view under their stable metric names.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named, statically allocated event counter.
#[derive(Debug)]
pub struct HotCounter {
    name: &'static str,
    hits: AtomicU64,
}

impl HotCounter {
    /// A zeroed counter with a stable metric name.
    pub const fn new(name: &'static str) -> Self {
        HotCounter {
            name,
            hits: AtomicU64::new(0),
        }
    }

    /// The metric name reported in snapshots.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds one event when observability is enabled.
    #[inline]
    pub fn bump(&self) {
        if crate::enabled() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds `n` events when observability is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.hits.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count (readable regardless of the enable flag).
    pub fn get(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (used by [`reset`](crate::reset)).
    pub(crate) fn clear(&self) {
        self.hits.store(0, Ordering::Relaxed);
    }
}

/// `XScan::replace` — O(1) single-ρ replacement queries issued.
pub static XENGINE_REPLACE: HotCounter = HotCounter::new("xengine.replace");
/// `XScan::commit` — replacements committed into the scan.
pub static XENGINE_COMMIT: HotCounter = HotCounter::new("xengine.commit");
/// `XScan::rebuild` — full O(n) prefix/suffix rebuilds.
pub static XENGINE_REBUILD: HotCounter = HotCounter::new("xengine.rebuild");
/// Subsets visited by the Gray-code exhaustive subset search.
pub static SELECTION_SUBSET_NODES: HotCounter = HotCounter::new("selection.subset_nodes");
/// Fault specs compiled into an execution by `execute_with_faults`.
pub static FAULTS_INJECTED: HotCounter = HotCounter::new("faults.injected");
/// Suffix re-optimizations performed by the adaptive replanner.
pub static FAULTS_REPLANS: HotCounter = HotCounter::new("faults.replans");
/// Result messages lost in transit (before any retransmission).
pub static FAULTS_LOST_MESSAGES: HotCounter = HotCounter::new("faults.lost_messages");
/// Sends the replanner skipped because the target was known-crashed or
/// the remaining hedged window could not fit them.
pub static FAULTS_SKIPPED_SENDS: HotCounter = HotCounter::new("faults.skipped_sends");
/// Profiles evaluated through the batched X-measure kernel.
pub static XBATCH_EVAL: HotCounter = HotCounter::new("xbatch.eval");
/// Profiles that fell back to the scalar path because their batch was
/// ragged (mixed lengths).
pub static XBATCH_RAGGED_FALLBACK: HotCounter = HotCounter::new("xbatch.ragged_fallback");
/// Chunk-stealing jobs dispatched to the persistent worker pool.
pub static PAR_POOL_JOBS: HotCounter = HotCounter::new("par.pool.jobs");
/// Decision nodes expanded by the branch-and-bound subset search.
pub static SELECT_BNB_NODES_VISITED: HotCounter = HotCounter::new("select.bnb.nodes_visited");
/// Branches cut by the branch-and-bound search (admissible bound plus
/// dominance tests), each eliminating a whole subtree of subsets.
pub static SELECT_BNB_NODES_PRUNED: HotCounter = HotCounter::new("select.bnb.nodes_pruned");
/// Workers inserted into a streaming churn scan.
pub static XSCAN_INSERT: HotCounter = HotCounter::new("xscan.insert");
/// Workers deleted from a streaming churn scan.
pub static XSCAN_DELETE: HotCounter = HotCounter::new("xscan.delete");
/// In-place speed rescales applied to a streaming churn scan
/// (`ChurnScan::replace`) — completes the churn op mix with
/// `xscan.insert`/`xscan.delete`.
pub static XSCAN_REPLACE: HotCounter = HotCounter::new("xscan.replace");
/// Times a parked pool worker was woken by a job becoming available
/// (condvar wait returning with work) — a high ratio of park-wakes to
/// jobs means the queue keeps draining dry.
pub static PAR_POOL_PARK_WAKES: HotCounter = HotCounter::new("par.pool.park_wakes");
/// Residual-load transfers committed by the work-exchange executor.
pub static PROTOCOL_EXCHANGE_TRANSFERS: HotCounter = HotCounter::new("protocol.exchange.transfers");
/// Work-exchange runs that degraded to adaptive replanning because a
/// straggler found no donor.
pub static PROTOCOL_EXCHANGE_DEGRADED: HotCounter = HotCounter::new("protocol.exchange.degraded");
/// Coded executions whose surviving shares reached the decode threshold.
pub static PROTOCOL_CODED_DECODES: HotCounter = HotCounter::new("protocol.coded.decodes");
/// Coded executions where fewer than k shares survived — the job was
/// undecodable and every returned share stranded.
pub static PROTOCOL_CODED_DECODE_FAILURES: HotCounter =
    HotCounter::new("protocol.coded.decode_failures");

/// Every static hot counter, in reporting order.
pub fn all() -> [&'static HotCounter; 21] {
    [
        &XENGINE_REPLACE,
        &XENGINE_COMMIT,
        &XENGINE_REBUILD,
        &SELECTION_SUBSET_NODES,
        &FAULTS_INJECTED,
        &FAULTS_REPLANS,
        &FAULTS_LOST_MESSAGES,
        &FAULTS_SKIPPED_SENDS,
        &XBATCH_EVAL,
        &XBATCH_RAGGED_FALLBACK,
        &PAR_POOL_JOBS,
        &SELECT_BNB_NODES_VISITED,
        &SELECT_BNB_NODES_PRUNED,
        &XSCAN_INSERT,
        &XSCAN_DELETE,
        &XSCAN_REPLACE,
        &PAR_POOL_PARK_WAKES,
        &PROTOCOL_EXCHANGE_TRANSFERS,
        &PROTOCOL_EXCHANGE_DEGRADED,
        &PROTOCOL_CODED_DECODES,
        &PROTOCOL_CODED_DECODE_FAILURES,
    ]
}

/// The metric-name registry: every counter, gauge, value, histogram,
/// sketch, and span name library code may emit. The `hetero-check`
/// `counter-name-discipline` lint parses this list straight out of this
/// source file and rejects any obs call in lib code whose literal name
/// is not registered — so adding an instrumentation site means adding
/// its name here, where the dashboards and `obsdiff` baselines can see
/// it. (Binary crates — the CLI's `cmd.*` spans, the experiments'
/// `trials.*` counts — are exempt; this is the *library* contract.)
pub const REGISTRY: &[&str] = &[
    // Static hot counters (kept in sync by `registry_covers_all_statics`).
    "xengine.replace",
    "xengine.commit",
    "xengine.rebuild",
    "selection.subset_nodes",
    "faults.injected",
    "faults.replans",
    "faults.lost_messages",
    "faults.skipped_sends",
    "xbatch.eval",
    "xbatch.ragged_fallback",
    "par.pool.jobs",
    "select.bnb.nodes_visited",
    "select.bnb.nodes_pruned",
    "xscan.insert",
    "xscan.delete",
    "xscan.replace",
    "par.pool.park_wakes",
    "protocol.exchange.transfers",
    "protocol.exchange.degraded",
    "protocol.coded.decodes",
    "protocol.coded.decode_failures",
    // Simulator and protocol dynamic metrics.
    "sim.events",
    "sim.queue_high_water",
    "protocol.util.server",
    "protocol.util.channel",
    "protocol.util.worker",
    "protocol.send",
    "protocol.compute",
    "protocol.receive",
    "protocol.wait",
    "protocol.other",
    // Replanner metrics.
    "faults.replan",
    "faults.replan.suffix_depth",
    // Protocol-family metrics (work exchange, MDS coding).
    "protocol.exchange.transfer_work",
    "protocol.coded.overhead",
    // Worker-pool metrics.
    "par.pool.map",
    "par.pool.queue_depth",
    // Subset-selection metrics.
    "select.bnb",
    "select.bnb.nodes",
    // Numeric-kernel diagnostics.
    "xengine.kahan_comp_log10",
    // Collector self-diagnostics.
    "obs.error.hist_range",
];

/// `true` iff `name` is a registered metric name.
pub fn is_registered(name: &str) -> bool {
    REGISTRY.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let names: Vec<&str> = all().iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "xengine.replace",
                "xengine.commit",
                "xengine.rebuild",
                "selection.subset_nodes",
                "faults.injected",
                "faults.replans",
                "faults.lost_messages",
                "faults.skipped_sends",
                "xbatch.eval",
                "xbatch.ragged_fallback",
                "par.pool.jobs",
                "select.bnb.nodes_visited",
                "select.bnb.nodes_pruned",
                "xscan.insert",
                "xscan.delete",
                "xscan.replace",
                "par.pool.park_wakes",
                "protocol.exchange.transfers",
                "protocol.exchange.degraded",
                "protocol.coded.decodes",
                "protocol.coded.decode_failures"
            ]
        );
    }

    #[test]
    fn registry_covers_all_statics() {
        for c in all() {
            assert!(
                is_registered(c.name()),
                "static counter `{}` missing from REGISTRY",
                c.name()
            );
        }
        // No duplicates — the registry is also documentation.
        let mut sorted: Vec<&str> = REGISTRY.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), REGISTRY.len(), "duplicate registry entry");
        assert!(!is_registered("not.a.metric"));
    }

    #[test]
    fn disabled_bump_is_a_no_op() {
        // A private local counter exercises the mechanics without racing
        // the global enable flag owned by other tests.
        static LOCAL: HotCounter = HotCounter::new("test.local");
        let before = LOCAL.get();
        if !crate::enabled() {
            LOCAL.bump();
            LOCAL.add(5);
            assert_eq!(LOCAL.get(), before, "bumps ignored while disabled");
        }
    }
}
