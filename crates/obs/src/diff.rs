//! The regression observatory: diffing two observability runs.
//!
//! `hetero-cli obsdiff <run-a> <run-b>` loads two runs — either obs
//! JSONL event streams or whole BENCH-style JSON documents, both parsed
//! with the crate's own [`json`](crate::json) parser — and compares
//! them under configurable noise thresholds:
//!
//! * **counters / gauges** (and every numeric leaf of a BENCH json,
//!   flattened to a dotted path) are exact-count metrics: any relative
//!   drift beyond the counter threshold is flagged in either direction;
//! * **span stats** compare mean wall duration per span name: an
//!   increase beyond the span threshold is a *regression*, a decrease
//!   an *improvement*;
//! * **sketch quantiles** (p50/p90/p99/max) follow the same one-sided
//!   rule under the quantile threshold;
//! * **value stats** compare means like counters (two-sided drift).
//!
//! Metrics present in only one run are reported as informational. The
//! report renders both human-readable ([`DiffReport::human`]) and
//! machine-readable ([`DiffReport::to_json`]); the CLI exits nonzero
//! iff any regression survived the thresholds, which is what turns a
//! perf regression into a red CI build.

use std::collections::BTreeMap;

use crate::json::{self, Value};

/// Relative-noise thresholds for one diff. All are fractions (0.05 =
/// 5%); `abs_floor` guards the denominators of near-zero baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffThresholds {
    /// Two-sided drift tolerance for counters, gauges, value means, and
    /// BENCH numeric leaves.
    pub counter_rel: f64,
    /// One-sided slowdown tolerance for span mean durations.
    pub span_rel: f64,
    /// One-sided slowdown tolerance for sketch quantiles.
    pub quantile_rel: f64,
    /// Denominator floor: baselines smaller than this in magnitude are
    /// compared against the floor instead of themselves.
    pub abs_floor: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            counter_rel: 0.01,
            span_rel: 0.05,
            quantile_rel: 0.05,
            abs_floor: 1e-9,
        }
    }
}

/// Aggregated wall-span statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanAgg {
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Total duration, µs.
    pub total_us: f64,
}

impl SpanAgg {
    /// Mean duration per span, µs.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us / self.count as f64
        }
    }
}

/// Sketch quantile summary as parsed from a `sketch` event.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SketchQuantiles {
    /// Observation count.
    pub count: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// Mean-level view of a `value` event.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ValueAgg {
    /// Observation count.
    pub count: f64,
    /// Mean.
    pub mean: f64,
}

/// One run, normalized for diffing.
#[derive(Debug, Clone, Default)]
pub struct RunData {
    /// Exact-count metrics: counters, gauges, and BENCH numeric leaves.
    pub counters: BTreeMap<String, f64>,
    /// Welford value means.
    pub values: BTreeMap<String, ValueAgg>,
    /// Sketch quantiles.
    pub sketches: BTreeMap<String, SketchQuantiles>,
    /// Wall-span aggregates.
    pub spans: BTreeMap<String, SpanAgg>,
}

impl RunData {
    /// Drops every metric whose name starts with one of `prefixes` from
    /// all four tables. This is how `obsdiff --ignore` excludes metrics
    /// that are honest but host-timing-dependent (pool park-wake counts,
    /// queue-depth high-water marks) from a deterministic gate.
    pub fn strip_prefixes(&mut self, prefixes: &[String]) {
        if prefixes.is_empty() {
            return;
        }
        let keep = |name: &String| !prefixes.iter().any(|p| name.starts_with(p.as_str()));
        self.counters.retain(|name, _| keep(name));
        self.values.retain(|name, _| keep(name));
        self.sketches.retain(|name, _| keep(name));
        self.spans.retain(|name, _| keep(name));
    }
}

/// Loads a run from text: a whole-document JSON object (BENCH json) or
/// an obs JSONL event stream, auto-detected by trying the document
/// parse first.
pub fn load_run(text: &str) -> Result<RunData, String> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err("empty run file".into());
    }
    if let Ok(doc) = json::parse(trimmed) {
        // A single-line obs stream is also a valid whole-document JSON
        // object — the `event` key disambiguates the two formats.
        if doc.get("event").and_then(Value::as_str).is_some() {
            return load_jsonl(trimmed);
        }
        if matches!(doc, Value::Obj(_)) {
            let mut run = RunData::default();
            flatten_numbers("", &doc, &mut run.counters);
            return Ok(run);
        }
        return Err("run file is JSON but not an object".into());
    }
    load_jsonl(trimmed)
}

fn load_jsonl(text: &str) -> Result<RunData, String> {
    let mut run = RunData::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let event = v
            .get("event")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing `event`", lineno + 1))?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing `name`", lineno + 1))?;
        let payload = v
            .get("value")
            .ok_or_else(|| format!("line {}: missing `value`", lineno + 1))?;
        match event {
            "counter" | "gauge" => {
                if let Some(x) = payload.as_f64() {
                    run.counters.insert(name.to_string(), x);
                }
            }
            "value" => {
                let get = |k: &str| payload.get(k).and_then(Value::as_f64).unwrap_or(f64::NAN);
                run.values.insert(
                    name.to_string(),
                    ValueAgg {
                        count: get("count"),
                        mean: get("mean"),
                    },
                );
            }
            "sketch" => {
                let get = |k: &str| payload.get(k).and_then(Value::as_f64).unwrap_or(f64::NAN);
                run.sketches.insert(
                    name.to_string(),
                    SketchQuantiles {
                        count: get("count"),
                        p50: get("p50"),
                        p90: get("p90"),
                        p99: get("p99"),
                        max: get("max"),
                    },
                );
            }
            "span" => {
                let dur = payload.get("dur_us").and_then(Value::as_f64).unwrap_or(0.0);
                let agg = run.spans.entry(name.to_string()).or_default();
                // hetero-check: allow(float-accum) — spans fold in fixed JSONL line order; obsdiff compares the means at percent-level thresholds
                agg.count += 1;
                agg.total_us += dur; // hetero-check: allow(float-accum) — same fixed-order fold as the count above
            }
            "spantree" => {
                if let Some(w) = payload.get("weight").and_then(Value::as_f64) {
                    run.counters.insert(format!("spantree.{name}.weight"), w);
                }
            }
            // The manifest duplicates counters and carries wall time,
            // which the span stats already cover.
            "manifest" => {}
            // Unknown event kinds pass through un-diffed: the stream
            // contract allows new kinds to appear.
            _ => {}
        }
    }
    Ok(run)
}

/// Flattens every numeric leaf of a JSON tree into `path.to.leaf → x`.
fn flatten_numbers(prefix: &str, v: &Value, out: &mut BTreeMap<String, f64>) {
    match v {
        Value::Num(x) => {
            out.insert(prefix.to_string(), *x);
        }
        Value::Obj(pairs) => {
            for (k, child) in pairs {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_numbers(&path, child, out);
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                let path = if prefix.is_empty() {
                    format!("{i}")
                } else {
                    format!("{prefix}.{i}")
                };
                flatten_numbers(&path, child, out);
            }
        }
        _ => {}
    }
}

/// How one diff entry is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Got slower / drifted beyond threshold — fails the gate.
    Regression,
    /// Got faster beyond threshold — reported, does not fail.
    Improvement,
    /// Present in only one run — informational.
    OnlyInA,
    /// Present in only one run — informational.
    OnlyInB,
}

impl Verdict {
    /// Stable lowercase tag for machine output.
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Regression => "regression",
            Verdict::Improvement => "improvement",
            Verdict::OnlyInA => "only_in_a",
            Verdict::OnlyInB => "only_in_b",
        }
    }
}

/// One metric that moved past its threshold (or exists on one side
/// only).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Metric family: `counter`, `value`, `span`, `sketch`.
    pub kind: &'static str,
    /// Metric name, suffixed with the compared statistic where it is
    /// not the value itself (e.g. `proto.lat/p99`, `cmd.all/mean_us`).
    pub name: String,
    /// Baseline (run A) value.
    pub a: f64,
    /// Candidate (run B) value.
    pub b: f64,
    /// `(b − a) / max(|a|, floor)`; 0 for one-sided presence entries.
    pub rel: f64,
    /// The judgement.
    pub verdict: Verdict,
}

/// The full diff result.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Entries that moved (or are one-sided), in deterministic order.
    pub entries: Vec<DiffEntry>,
    /// Metrics compared (both sides present).
    pub compared: usize,
}

impl DiffReport {
    /// Number of regressions — the CI gate fails iff this is nonzero.
    pub fn regressions(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.verdict == Verdict::Regression)
            .count()
    }

    /// Human-readable report.
    pub fn human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "── obsdiff: {} metrics compared, {} flagged, {} regressions ──",
            self.compared,
            self.entries.len(),
            self.regressions()
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "  {:<12} {:<48} {:>14.6} → {:<14.6} {:>+8.2}%  {}",
                e.kind,
                e.name,
                e.a,
                e.b,
                e.rel * 100.0,
                e.verdict.tag()
            );
        }
        if self.entries.is_empty() {
            let _ = writeln!(out, "  (no differences beyond thresholds)");
        }
        out
    }

    /// Machine-readable report as one JSON document.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("compared".into(), Value::Num(self.compared as f64)),
            ("regressions".into(), Value::Num(self.regressions() as f64)),
            (
                "entries".into(),
                Value::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Value::Obj(vec![
                                ("kind".into(), Value::Str(e.kind.into())),
                                ("name".into(), Value::Str(e.name.clone())),
                                ("a".into(), Value::Num(e.a)),
                                ("b".into(), Value::Num(e.b)),
                                ("rel".into(), Value::Num(e.rel)),
                                ("verdict".into(), Value::Str(e.verdict.tag().into())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Diffs run `b` (candidate) against run `a` (baseline).
pub fn diff(a: &RunData, b: &RunData, thr: &DiffThresholds) -> DiffReport {
    let mut report = DiffReport::default();

    // Counters and value means: two-sided drift.
    two_sided(
        "counter",
        &a.counters,
        &b.counters,
        |&x| x,
        thr.counter_rel,
        thr,
        &mut report,
    );
    two_sided(
        "value",
        &a.values,
        &b.values,
        |v: &ValueAgg| v.mean,
        thr.counter_rel,
        thr,
        &mut report,
    );

    // Span means: one-sided slowdown.
    for (name, sa) in &a.spans {
        match b.spans.get(name) {
            None => report.entries.push(presence(
                "span",
                &format!("{name}/mean_us"),
                sa.mean_us(),
                Verdict::OnlyInA,
            )),
            Some(sb) => {
                report.compared += 1;
                judge_one_sided(
                    "span",
                    &format!("{name}/mean_us"),
                    sa.mean_us(),
                    sb.mean_us(),
                    thr.span_rel,
                    thr.abs_floor,
                    &mut report,
                );
            }
        }
    }
    for (name, sb) in &b.spans {
        if !a.spans.contains_key(name) {
            report.entries.push(presence(
                "span",
                &format!("{name}/mean_us"),
                sb.mean_us(),
                Verdict::OnlyInB,
            ));
        }
    }

    // Sketch quantiles: one-sided slowdown per statistic.
    for (name, qa) in &a.sketches {
        match b.sketches.get(name) {
            None => report
                .entries
                .push(presence("sketch", name, qa.p50, Verdict::OnlyInA)),
            Some(qb) => {
                report.compared += 1;
                for (stat, x, y) in [
                    ("p50", qa.p50, qb.p50),
                    ("p90", qa.p90, qb.p90),
                    ("p99", qa.p99, qb.p99),
                    ("max", qa.max, qb.max),
                ] {
                    judge_one_sided(
                        "sketch",
                        &format!("{name}/{stat}"),
                        x,
                        y,
                        thr.quantile_rel,
                        thr.abs_floor,
                        &mut report,
                    );
                }
            }
        }
    }
    for (name, qb) in &b.sketches {
        if !a.sketches.contains_key(name) {
            report
                .entries
                .push(presence("sketch", name, qb.p50, Verdict::OnlyInB));
        }
    }

    report
}

fn presence(kind: &'static str, name: &str, v: f64, verdict: Verdict) -> DiffEntry {
    let (a, b) = match verdict {
        Verdict::OnlyInA => (v, f64::NAN),
        _ => (f64::NAN, v),
    };
    DiffEntry {
        kind,
        name: name.to_string(),
        a,
        b,
        rel: 0.0,
        verdict,
    }
}

fn rel_change(a: f64, b: f64, floor: f64) -> f64 {
    (b - a) / a.abs().max(floor)
}

fn two_sided<T, F>(
    kind: &'static str,
    a: &BTreeMap<String, T>,
    b: &BTreeMap<String, T>,
    project: F,
    rel_thr: f64,
    thr: &DiffThresholds,
    report: &mut DiffReport,
) where
    F: Fn(&T) -> f64,
{
    for (name, va) in a {
        match b.get(name) {
            None => report
                .entries
                .push(presence(kind, name, project(va), Verdict::OnlyInA)),
            Some(vb) => {
                report.compared += 1;
                let (x, y) = (project(va), project(vb));
                if x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()) {
                    continue;
                }
                let rel = rel_change(x, y, thr.abs_floor);
                if rel.abs() > rel_thr || rel.is_nan() {
                    let verdict = if rel > 0.0 || rel.is_nan() {
                        Verdict::Regression
                    } else {
                        // Two-sided drift: shrinkage is also a behaviour
                        // change for exact counters, but it cannot make
                        // the build slower — report as improvement.
                        Verdict::Improvement
                    };
                    report.entries.push(DiffEntry {
                        kind,
                        name: name.clone(),
                        a: x,
                        b: y,
                        rel,
                        verdict,
                    });
                }
            }
        }
    }
    for (name, vb) in b {
        if !a.contains_key(name) {
            report
                .entries
                .push(presence(kind, name, project(vb), Verdict::OnlyInB));
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn judge_one_sided(
    kind: &'static str,
    name: &str,
    a: f64,
    b: f64,
    rel_thr: f64,
    floor: f64,
    report: &mut DiffReport,
) {
    if a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()) {
        return;
    }
    let rel = rel_change(a, b, floor);
    if rel > rel_thr {
        report.entries.push(DiffEntry {
            kind,
            name: name.to_string(),
            a,
            b,
            rel,
            verdict: Verdict::Regression,
        });
    } else if rel < -rel_thr {
        report.entries.push(DiffEntry {
            kind,
            name: name.to_string(),
            a,
            b,
            rel,
            verdict: Verdict::Improvement,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jsonl_run(scale: f64) -> RunData {
        let text = format!(
            concat!(
                "{{\"event\":\"counter\",\"name\":\"sim.events\",\"value\":120}}\n",
                "{{\"event\":\"gauge\",\"name\":\"sim.queue_high_water\",\"value\":5}}\n",
                "{{\"event\":\"value\",\"name\":\"protocol.send\",\"value\":",
                "{{\"count\":8,\"mean\":2.5,\"stddev\":0.5,\"min\":2,\"max\":3}}}}\n",
                "{{\"event\":\"sketch\",\"name\":\"protocol.lat\",\"value\":",
                "{{\"count\":100,\"min\":1,\"max\":{max},\"p50\":10,\"p90\":{p90},\"p99\":20}}}}\n",
                "{{\"event\":\"span\",\"name\":\"cmd.all\",\"value\":",
                "{{\"start_us\":0,\"dur_us\":{dur}}}}}\n",
                "{{\"event\":\"manifest\",\"name\":\"all\",\"value\":{{\"wall_ms\":9}}}}\n",
            ),
            max = 30.0 * scale,
            p90 = 15.0 * scale,
            dur = 1000.0 * scale,
        );
        load_run(&text).expect("well-formed stream")
    }

    #[test]
    fn self_diff_is_clean() {
        let a = jsonl_run(1.0);
        let r = diff(&a, &a, &DiffThresholds::default());
        assert_eq!(r.entries, vec![]);
        assert_eq!(r.regressions(), 0);
        assert!(r.compared >= 4);
        assert!(r.human().contains("no differences"));
    }

    #[test]
    fn ten_percent_slowdown_is_caught() {
        let a = jsonl_run(1.0);
        let b = jsonl_run(1.1);
        let r = diff(&a, &b, &DiffThresholds::default());
        assert!(r.regressions() >= 2, "span + quantiles must fire: {r:?}");
        assert!(r
            .entries
            .iter()
            .any(|e| e.kind == "span" && e.name == "cmd.all/mean_us"));
        assert!(r
            .entries
            .iter()
            .any(|e| e.kind == "sketch" && e.name == "protocol.lat/p90"));
        // Counters were identical: no counter entry.
        assert!(r.entries.iter().all(|e| e.kind != "counter"));
    }

    #[test]
    fn speedup_reports_improvement_not_regression() {
        let a = jsonl_run(1.0);
        let b = jsonl_run(0.8);
        let r = diff(&a, &b, &DiffThresholds::default());
        assert_eq!(r.regressions(), 0);
        assert!(r.entries.iter().any(|e| e.verdict == Verdict::Improvement));
    }

    #[test]
    fn counter_drift_is_two_sided() {
        let mut a = RunData::default();
        let mut b = RunData::default();
        a.counters.insert("xscan.insert".into(), 100.0);
        b.counters.insert("xscan.insert".into(), 90.0);
        let r = diff(&a, &b, &DiffThresholds::default());
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].verdict, Verdict::Improvement);
        let r2 = diff(&b, &a, &DiffThresholds::default());
        assert_eq!(r2.entries[0].verdict, Verdict::Regression);
    }

    #[test]
    fn bench_documents_flatten_and_diff() {
        let a = load_run(
            r#"{ "pr": 7, "units": "ns_per_iter",
                 "table": { "n16": {"mean": 100.0, "min": 90.0} } }"#,
        )
        .unwrap();
        let b = load_run(
            r#"{ "pr": 7, "units": "ns_per_iter",
                 "table": { "n16": {"mean": 200.0, "min": 95.0} } }"#,
        )
        .unwrap();
        assert_eq!(a.counters.get("table.n16.mean"), Some(&100.0));
        let r = diff(&a, &b, &DiffThresholds::default());
        assert!(r
            .entries
            .iter()
            .any(|e| e.name == "table.n16.mean" && e.verdict == Verdict::Regression));
    }

    #[test]
    fn one_sided_presence_is_informational() {
        let a = jsonl_run(1.0);
        let mut b = jsonl_run(1.0);
        b.counters.insert("brand.new".into(), 1.0);
        b.spans.remove("cmd.all");
        let r = diff(&a, &b, &DiffThresholds::default());
        assert_eq!(r.regressions(), 0);
        assert!(r
            .entries
            .iter()
            .any(|e| e.verdict == Verdict::OnlyInB && e.name == "brand.new"));
        assert!(r
            .entries
            .iter()
            .any(|e| e.verdict == Verdict::OnlyInA && e.name == "cmd.all/mean_us"));
    }

    #[test]
    fn report_renders_json_and_human() {
        let a = jsonl_run(1.0);
        let b = jsonl_run(1.2);
        let r = diff(&a, &b, &DiffThresholds::default());
        let doc = r.to_json().render();
        let parsed = json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("regressions").and_then(Value::as_f64),
            Some(r.regressions() as f64)
        );
        assert!(r.human().contains("regression"));
    }

    #[test]
    fn malformed_input_is_a_typed_error() {
        assert!(load_run("").is_err());
        assert!(load_run("not json at all").is_err());
        assert!(load_run("[1,2,3]").is_err());
    }

    #[test]
    fn spantree_weights_join_the_counter_namespace() {
        let run = load_run(
            "{\"event\":\"spantree\",\"name\":\"fig2\",\"value\":{\"weight\":100.0,\"folded\":\"a;b\"}}",
        )
        .unwrap();
        assert_eq!(run.counters.get("spantree.fig2.weight"), Some(&100.0));
    }

    #[test]
    fn strip_prefixes_drops_ignored_namespaces_everywhere() {
        let stream = "{\"event\":\"counter\",\"name\":\"par.pool.park_wakes\",\"value\":8}\n\
                      {\"event\":\"counter\",\"name\":\"sim.events\",\"value\":42}\n\
                      {\"event\":\"sketch\",\"name\":\"par.pool.lat\",\"value\":{\"count\":1,\"min\":1,\"max\":1,\"p50\":1,\"p90\":1,\"p99\":1}}\n\
                      {\"event\":\"span\",\"name\":\"par.pool.map\",\"value\":{\"start_us\":0,\"dur_us\":10}}";
        let mut run = load_run(stream).unwrap();
        run.strip_prefixes(&["par.pool.".to_string()]);
        assert_eq!(run.counters.len(), 1);
        assert!(run.counters.contains_key("sim.events"));
        assert!(run.sketches.is_empty());
        assert!(run.spans.is_empty());
        // An empty prefix list is a no-op.
        run.strip_prefixes(&[]);
        assert_eq!(run.counters.len(), 1);
    }
}
