//! The lint passes: token-stream rules, file classification, allow
//! comments, and per-file scanning.

use crate::callgraph::FnFacts;
use crate::cfg::{lower, Step};
use crate::dataflow::{self, Env, VarFact, VarFlow, HASH_ITER_METHODS};
use crate::diag::{Diagnostic, Lint, Suppressed};
use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::parser::{parse, Ast, Block as AstBlock, StmtKind, TokRange};
use std::collections::HashMap;

/// How a file participates in linting, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `src/` of a library crate: all lints apply.
    LibrarySrc,
    /// `src/` of a binary/tool crate, benches, examples: float hygiene
    /// and constructor discipline only (panics are acceptable at the
    /// process boundary).
    BinSrc,
    /// Tests: constructor discipline only.
    TestCode,
    /// Not linted (shims, fixtures, generated output).
    Skip,
}

/// Crates whose `src/` is treated as [`FileClass::BinSrc`].
const BIN_CRATES: &[&str] = &["cli", "experiments", "bench", "check"];

/// Rust keywords, used to avoid misreading syntax as expressions.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "macro", "match", "mod",
    "move", "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait",
    "true", "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// Doc-comment substrings accepted as paper anchors.
const PAPER_ANCHORS: &[&str] = &[
    "Theorem",
    "Proposition",
    "Lemma",
    "Corollary",
    "Definition",
    "Observation",
    "Eq.",
    "Eq (",
    "§",
    "Section",
];

/// Files whose public items must cite the paper.
const ANCHOR_FILES: &[&str] = &[
    "crates/core/src/xmeasure.rs",
    "crates/core/src/hecr.rs",
    "crates/core/src/speedup.rs",
    "crates/core/src/xengine.rs",
];

/// Classifies a forward-slash path relative to the workspace root.
pub fn classify(rel: &str) -> FileClass {
    if rel.starts_with("shims/")
        || rel.starts_with("target/")
        || rel.contains("/fixtures/")
        || rel.contains("/target/")
    {
        return FileClass::Skip;
    }
    if rel.starts_with("examples/") || rel.contains("/benches/") {
        return FileClass::BinSrc;
    }
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        return FileClass::TestCode;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((krate, tail)) = rest.split_once('/') {
            if tail.starts_with("src/") {
                return if BIN_CRATES.contains(&krate) {
                    FileClass::BinSrc
                } else {
                    FileClass::LibrarySrc
                };
            }
        }
    }
    FileClass::Skip
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Findings that stand (not allow-suppressed).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings an allow comment waived, with the stated reason.
    pub suppressed: Vec<Suppressed>,
    /// Per-function facts for the cross-file call-graph pass (library
    /// sources only).
    pub fn_facts: Vec<FnFacts>,
}

/// Scans one file's source, returning its diagnostics. Counter-name
/// discipline is inert in this entry point (no registry); the full
/// runner uses [`scan_file_with_registry`].
pub fn scan_file(rel: &str, src: &str) -> FileScan {
    scan_file_with_registry(rel, src, None)
}

/// Scans one file's source with the metric-name registry loaded from
/// `crates/obs/src/counters.rs` (`None` disables counter-name
/// discipline — e.g. in a tree without the obs crate).
pub fn scan_file_with_registry(rel: &str, src: &str, registry: Option<&[String]>) -> FileScan {
    let class = classify(rel);
    if class == FileClass::Skip {
        return FileScan::default();
    }
    let lexed = lex(src);
    let mask = test_mask(&lexed.tokens);
    let (allows, mut raw) = parse_allows(rel, &lexed.comments);

    let cx = Cx {
        rel,
        tokens: &lexed.tokens,
        in_test: &mask,
    };

    let ast = parse(&lexed.tokens);
    if matches!(class, FileClass::LibrarySrc | FileClass::BinSrc) {
        cx.float_eq(&mut raw);
        let chained = cx.partial_cmp_unwrap(&mut raw);
        // Stronger-than-Relaxed atomic orderings encode happens-before
        // arguments; they must be justified wherever they appear.
        cx.atomic_ordering(&lexed.comments, &mut raw);
        if class == FileClass::LibrarySrc {
            cx.naked_sum(&mut raw);
            cx.unwrap_expect(&mut raw, &chained);
            cx.panics(&mut raw);
            cx.print_in_lib(&mut raw);
            // The simulator crate owns SimTime and validates inside
            // `new` itself; everyone else must use the fallible API.
            if !rel.starts_with("crates/sim/src/") {
                cx.sim_time_unchecked(&mut raw);
            }
            // hetero-par owns thread creation; everyone else goes
            // through its pool so fan-out stays deterministic and
            // panic-contained.
            if !rel.starts_with("crates/par/src/") {
                cx.thread_spawn_outside_par(&mut raw);
            }
            // hetero-obs owns wall-clock reads; libraries take time as
            // data so their behaviour is reproducible.
            if !rel.starts_with("crates/obs/src/") {
                cx.wall_clock(&mut raw);
            }
            // The certified fast-kernel modules own approximation; the
            // rest of the library keeps the strict, bit-reproducible
            // evaluation order.
            if !rel.starts_with("crates/simd/src/") && rel != "crates/core/src/fastnum.rs" {
                cx.approx_math_outside_kernel(&mut raw);
            }
            // Retry loops must carry a compile-visible bound; one
            // persistent fault must never become a livelock.
            cx.unbounded_retry(&mut raw);
            // Literal metric names in library code must come from the
            // registry, so `obsdiff` baselines never silently fork.
            if let Some(reg) = registry {
                cx.counter_name_discipline(reg, &mut raw);
            }
            cx.dataflow_lints(&ast, &mut raw);
            cx.indexing(&mut raw);
            cx.crate_policy(src, &mut raw);
            cx.paper_anchor(src, &mut raw);
        }
    }
    cx.constructor_discipline(&mut raw);
    let fn_facts = if class == FileClass::LibrarySrc {
        cx.collect_fn_facts(&ast, src, &allows)
    } else {
        Vec::new()
    };

    // Apply allow comments: a suppression covers its own line and the
    // following line, so it can sit inline or immediately above.
    let mut out = FileScan {
        fn_facts,
        ..FileScan::default()
    };
    for diag in raw {
        match allows.get(&(diag.line, diag.lint)) {
            Some(reason) if diag.lint != Lint::AllowMissingReason => {
                out.suppressed.push(Suppressed {
                    diag,
                    reason: reason.clone(),
                })
            }
            _ => out.diagnostics.push(diag),
        }
    }
    out.diagnostics.sort_by_key(|d| (d.line, d.col));
    out
}

/// Parses `// hetero-check: allow(<lints>) — <reason>` comments. Returns
/// the suppression map keyed by (covered line, lint) plus diagnostics for
/// malformed comments.
fn parse_allows(
    rel: &str,
    comments: &[Comment],
) -> (HashMap<(u32, Lint), String>, Vec<Diagnostic>) {
    let mut map = HashMap::new();
    let mut diags = Vec::new();
    for c in comments {
        // Suppressions must be plain `//` comments; doc comments merely
        // *describing* the syntax are not suppressions.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(at) = c.text.find("hetero-check:") else {
            continue;
        };
        let rest = c.text[at + "hetero-check:".len()..].trim_start();
        let mut bad = |msg: String| {
            diags.push(Diagnostic {
                lint: Lint::AllowMissingReason,
                level: Lint::AllowMissingReason.level(),
                file: rel.to_string(),
                line: c.line,
                col: 1,
                message: msg,
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            bad(
                "malformed hetero-check comment; expected `hetero-check: allow(<lint>) — <reason>`"
                    .into(),
            );
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("unclosed `allow(` in hetero-check comment".into());
            continue;
        };
        let mut lints = Vec::new();
        let mut unknown = false;
        for id in args[..close].split(',') {
            let id = id.trim();
            match Lint::from_name(id) {
                Some(l) => lints.push(l),
                None => {
                    bad(format!("unknown lint `{id}` in allow comment"));
                    unknown = true;
                }
            }
        }
        if unknown {
            continue;
        }
        let reason = args[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim();
        if reason.is_empty() {
            bad("allow comment has no justification; write `allow(<lint>) — <reason>`".into());
            continue;
        }
        for lint in lints {
            map.insert((c.line, lint), reason.to_string());
            map.insert((c.line + 1, lint), reason.to_string());
        }
    }
    (map, diags)
}

/// Marks tokens belonging to `#[test]` / `#[cfg(test)]` items so the
/// panic-freedom and float lints skip test-only code embedded in `src/`.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Walk the attribute, noting whether it mentions `test` (and is
        // not a `cfg(not(test))`).
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut has_test = false;
        let mut has_not = false;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" if tokens[j].kind == TokenKind::Ident => has_test = true,
                "not" if tokens[j].kind == TokenKind::Ident => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then mark through the end of the
        // annotated item (`;` at depth 0, or the matching close brace).
        let mut k = j + 1;
        while k + 1 < tokens.len() && tokens[k].text == "#" && tokens[k + 1].text == "[" {
            let mut d = 0i32;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut d = 0i32;
        let mut end = k;
        while end < tokens.len() {
            match tokens[end].text.as_str() {
                "{" | "(" | "[" => d += 1,
                "}" | ")" | "]" => {
                    d -= 1;
                    if d == 0 && tokens[end].text == "}" {
                        break;
                    }
                }
                ";" if d == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let end = end.min(tokens.len().saturating_sub(1));
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

struct Cx<'a> {
    rel: &'a str,
    tokens: &'a [Token],
    in_test: &'a [bool],
}

impl<'a> Cx<'a> {
    fn emit(&self, out: &mut Vec<Diagnostic>, lint: Lint, tok: &Token, message: String) {
        out.push(Diagnostic {
            lint,
            level: lint.level(),
            file: self.rel.to_string(),
            line: tok.line,
            col: tok.col,
            message,
        });
    }

    fn live(&self, i: usize) -> bool {
        !self.in_test.get(i).copied().unwrap_or(false)
    }

    fn text(&self, i: usize) -> &str {
        self.tokens.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn is_ident(&self, i: usize) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    }

    /// `==` / `!=` with a float literal on either side.
    fn float_eq(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || !matches!(tok.text.as_str(), "==" | "!=") {
                continue;
            }
            let float_neighbour = [i.wrapping_sub(1), i + 1].iter().any(|&j| {
                self.tokens
                    .get(j)
                    .is_some_and(|t| t.kind == TokenKind::Float)
            });
            if float_neighbour {
                self.emit(
                    out,
                    Lint::FloatEq,
                    tok,
                    "exact float comparison; use a named epsilon, or document the exact \
                     sentinel with `// hetero-check: allow(float-eq) — <why exactness holds>`"
                        .into(),
                );
            }
        }
    }

    /// `partial_cmp(..)` chained into `unwrap` / `expect` / `unwrap_or*`.
    /// Returns the token indices of the chained method names so the
    /// generic unwrap/expect pass does not double-report them.
    fn partial_cmp_unwrap(&self, out: &mut Vec<Diagnostic>) -> Vec<usize> {
        let mut chained = Vec::new();
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.text != "partial_cmp" || tok.kind != TokenKind::Ident {
                continue;
            }
            if self.text(i + 1) != "(" {
                continue;
            }
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < self.tokens.len() {
                match self.text(j) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if self.text(j + 1) == "."
                && matches!(
                    self.text(j + 2),
                    "unwrap" | "expect" | "unwrap_or" | "unwrap_or_else"
                )
            {
                chained.push(j + 2);
                self.emit(
                    out,
                    Lint::PartialCmpUnwrap,
                    tok,
                    format!(
                        "partial_cmp(..).{}(..) is not a total order over floats; \
                         sort with f64::total_cmp (or Ord::cmp for exact types)",
                        self.text(j + 2)
                    ),
                );
            }
        }
        chained
    }

    /// Bare `.sum()` in the numerical kernels (core, symfunc).
    fn naked_sum(&self, out: &mut Vec<Diagnostic>) {
        if !(self.rel.starts_with("crates/core/src/")
            || self.rel.starts_with("crates/symfunc/src/"))
        {
            return;
        }
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.text != "." {
                continue;
            }
            if self.text(i + 1) != "sum" || !self.is_ident(i + 1) {
                continue;
            }
            // `.sum::<T>()` with a non-float T is fine; `.sum::<f64>()`
            // and untyped `.sum()` (which may resolve to f64) are not.
            match self.text(i + 2) {
                "::" => {
                    let ty = self.text(i + 4);
                    if ty != "f64" && ty != "f32" {
                        continue;
                    }
                }
                "(" => {}
                _ => continue,
            }
            self.emit(
                out,
                Lint::NakedSum,
                &self.tokens[i + 1],
                "bare float summation accumulates rounding error in the kernels; \
                 route through hetero_core::numeric::kahan_sum (or annotate an \
                 integer sum with an allow comment)"
                    .into(),
            );
        }
    }

    /// `.unwrap()` / `.expect(..)` in library code.
    fn unwrap_expect(&self, out: &mut Vec<Diagnostic>, chained: &[usize]) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.text != "." {
                continue;
            }
            let name = self.text(i + 1);
            if !matches!(name, "unwrap" | "expect") || !self.is_ident(i + 1) {
                continue;
            }
            if self.text(i + 2) != "(" || chained.contains(&(i + 1)) {
                continue;
            }
            let lint = if name == "unwrap" {
                Lint::Unwrap
            } else {
                Lint::Expect
            };
            self.emit(
                out,
                lint,
                &self.tokens[i + 1],
                format!(
                    "`.{name}()` can panic in library code; return a Result, make the \
                     invariant unrepresentable, or justify it with \
                     `// hetero-check: allow({})` — <why it cannot fire>",
                    lint.name()
                ),
            );
        }
    }

    /// `panic!` family in library code.
    fn panics(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i)
                || tok.kind != TokenKind::Ident
                || !matches!(
                    tok.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
            {
                continue;
            }
            if self.text(i + 1) != "!" {
                continue;
            }
            self.emit(
                out,
                Lint::Panic,
                tok,
                format!(
                    "`{}!` aborts library callers; return an error or prove the branch \
                     impossible (allow comment with justification if it is)",
                    tok.text
                ),
            );
        }
    }

    /// `println!` / `eprintln!` / `print!` / `eprint!` in library code.
    /// Libraries must return data and let binaries decide how to present
    /// it; ad-hoc printing bypasses the structured observability layer
    /// (`hetero-obs`) and corrupts machine-readable CLI output.
    fn print_in_lib(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i)
                || tok.kind != TokenKind::Ident
                || !matches!(
                    tok.text.as_str(),
                    "println" | "print" | "eprintln" | "eprint"
                )
            {
                continue;
            }
            if self.text(i + 1) != "!" {
                continue;
            }
            // `writeln!`-style targets are fine; a preceding `.` means this
            // is a method/field named e.g. `print`, not the macro.
            if i > 0 && self.text(i - 1) == "." {
                continue;
            }
            self.emit(
                out,
                Lint::PrintInLib,
                tok,
                format!(
                    "`{}!` in library code writes to the process's stdio behind the \
                     caller's back; return the text, or record it through hetero-obs",
                    tok.text
                ),
            );
        }
    }

    /// `SimTime::new` panics on non-finite input; library code outside
    /// the simulator crate (which owns and validates the type) must use
    /// `SimTime::try_new` and propagate the typed error instead —
    /// fault-injected schedules make non-finite times reachable.
    fn sim_time_unchecked(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.kind != TokenKind::Ident || tok.text != "SimTime" {
                continue;
            }
            if self.text(i + 1) != "::" || self.text(i + 2) != "new" {
                continue;
            }
            // `new` must be a call, not a path segment like
            // `SimTime::new_unchecked` (the lexer splits idents, so this
            // is just the `(` check).
            if self.text(i + 3) != "(" {
                continue;
            }
            self.emit(
                out,
                Lint::SimTimeUnchecked,
                tok,
                "`SimTime::new` panics on non-finite input; outside hetero-sim use \
                 `SimTime::try_new` and propagate the error — fault-injected \
                 schedules make non-finite times reachable"
                    .to_string(),
            );
        }
    }

    /// Ad-hoc thread creation outside `crates/par`: `thread::spawn` and
    /// raw `crossbeam` scopes bypass the worker pool's seeded
    /// determinism, panic containment, and `HETERO_THREADS` sizing, so
    /// library code must fan out through `hetero_par::Pool` instead.
    /// (`thread::available_parallelism` and friends stay legal — only
    /// the spawning entry points are gated.)
    fn thread_spawn_outside_par(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.kind != TokenKind::Ident {
                continue;
            }
            let spawn = tok.text == "thread"
                && self.text(i + 1) == "::"
                && self.text(i + 2) == "spawn"
                && self.text(i + 3) == "(";
            let scope = tok.text == "crossbeam"
                && self.text(i + 1) == "::"
                && ((self.text(i + 2) == "scope" && self.text(i + 3) == "(")
                    || (self.text(i + 2) == "thread"
                        && self.text(i + 3) == "::"
                        && self.text(i + 4) == "scope"
                        && self.text(i + 5) == "("));
            if spawn || scope {
                self.emit(
                    out,
                    Lint::ThreadSpawnOutsidePar,
                    tok,
                    "ad-hoc threads bypass the pool's determinism and panic \
                     containment; fan out through `hetero_par::Pool::map` (or \
                     `Executor`) instead of spawning here"
                        .to_string(),
                );
            }
        }
    }

    /// Approximate-math primitives outside the certified fast-kernel
    /// modules. Raw SIMD intrinsics (`_mm*` / `__m*`), reciprocal
    /// approximations (`rcp*`-named calls and constants), and Newton
    /// refinement loops are only legal in `crates/simd` and
    /// `crates/core/src/fastnum.rs`, where every kernel states an
    /// analytic error budget and is proptest-certified against the
    /// exact oracle (DESIGN.md §17). Anywhere else, an unannounced
    /// approximation silently erodes the strict mode's bit-reproducible
    /// contract.
    fn approx_math_outside_kernel(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.kind != TokenKind::Ident {
                continue;
            }
            let t = tok.text.as_str();
            let lower = t.to_ascii_lowercase();
            let simd = t.starts_with("_mm") || t.starts_with("__m");
            let rcp = lower == "rcp"
                || lower.starts_with("rcp_")
                || lower.ends_with("_rcp")
                || lower.contains("_rcp_");
            let newton = lower.contains("newton");
            if !(simd || rcp || newton) {
                continue;
            }
            let what = if simd {
                "raw SIMD intrinsics"
            } else if rcp {
                "reciprocal approximation"
            } else {
                "Newton refinement"
            };
            self.emit(
                out,
                Lint::ApproxMathOutsideKernel,
                tok,
                format!(
                    "{what} (`{t}`) belongs in the certified fast-kernel modules \
                     (crates/simd, crates/core/src/fastnum.rs), where an error \
                     budget is stated and proptest-certified; call the strict \
                     kernels or `NumericMode::Fast` entry points instead"
                ),
            );
        }
    }

    /// `Instant::now` / `SystemTime::now` in library code. Wall-clock
    /// reads make behaviour time-dependent; only `crates/obs` (which is
    /// scoped out by the caller) may measure real time.
    fn wall_clock(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i)
                || tok.kind != TokenKind::Ident
                || !matches!(tok.text.as_str(), "Instant" | "SystemTime")
            {
                continue;
            }
            if self.text(i + 1) != "::" || self.text(i + 2) != "now" || self.text(i + 3) != "(" {
                continue;
            }
            self.emit(
                out,
                Lint::WallClockInLib,
                tok,
                format!(
                    "`{}::now()` makes library behaviour wall-clock dependent; take \
                     time as a parameter, use SimTime, or measure through hetero-obs",
                    tok.text
                ),
            );
        }
    }

    /// A `loop` / `while` in library code whose body issues a
    /// retransmit/retry call with no compile-visible bound. The fault
    /// executor keeps its losses finite as *data* (`losses_left`
    /// budgets); every retry loop must show the same shape — a
    /// `max`/`remaining`/`budget`-style identifier in the condition or
    /// body — or carry a justified allow naming the termination
    /// argument. An unbounded retransmit loop turns one persistent
    /// fault into a livelock that no deadline test can catch.
    fn unbounded_retry(&self, out: &mut Vec<Diagnostic>) {
        const RETRYISH: &[&str] = &["retry", "retries", "retransmit", "resend"];
        const BOUNDISH: &[&str] = &[
            "max",
            "budget",
            "limit",
            "bound",
            "remaining",
            "left",
            "attempts",
        ];
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i)
                || tok.kind != TokenKind::Ident
                || !matches!(tok.text.as_str(), "loop" | "while")
            {
                continue;
            }
            // A preceding `.` means a method/field named `loop`-ish,
            // not the keyword.
            if i > 0 && self.text(i - 1) == "." {
                continue;
            }
            // Condition tokens run from the keyword to the body's `{`;
            // the body is the brace-matched block after it.
            let Some(open) = (i + 1..self.tokens.len()).find(|&j| self.text(j) == "{") else {
                continue;
            };
            let mut depth = 0i32;
            let mut close = open;
            while close < self.tokens.len() {
                match self.text(close) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                close += 1;
            }
            let lower = |j: usize| self.text(j).to_ascii_lowercase();
            let retries = (open + 1..close).any(|j| {
                self.is_ident(j)
                    && self.text(j + 1) == "("
                    && RETRYISH.iter().any(|r| lower(j).contains(r))
            });
            if !retries {
                continue;
            }
            let bounded = (i + 1..close)
                .any(|j| self.is_ident(j) && BOUNDISH.iter().any(|b| lower(j).contains(b)));
            if bounded {
                continue;
            }
            self.emit(
                out,
                Lint::UnboundedRetry,
                tok,
                format!(
                    "`{}` retransmits with no compile-visible bound; thread a \
                     max/remaining budget through the condition or body, or justify \
                     the termination argument with \
                     `// hetero-check: allow(unbounded-retry)` — <why it drains>",
                    tok.text
                ),
            );
        }
    }

    /// `hetero_obs::{count, gauge_max, observe, observe_hist, sketch,
    /// timed}` called with a string-literal metric name that is not in
    /// `hetero_obs::counters::REGISTRY`. Dynamic names (variables,
    /// `format!`) are out of scope — the lint is purely syntactic, like
    /// the rest of the pass.
    fn counter_name_discipline(&self, registry: &[String], out: &mut Vec<Diagnostic>) {
        const RECORDERS: &[&str] = &[
            "count",
            "gauge_max",
            "observe",
            "observe_hist",
            "sketch",
            "timed",
        ];
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.kind != TokenKind::Ident || tok.text != "hetero_obs" {
                continue;
            }
            if self.text(i + 1) != "::" || !RECORDERS.contains(&self.text(i + 2)) {
                continue;
            }
            if self.text(i + 3) != "(" {
                continue;
            }
            let Some(arg) = self.tokens.get(i + 4) else {
                continue;
            };
            if arg.kind != TokenKind::Str || !arg.text.starts_with('"') {
                continue;
            }
            let name = arg.text.trim_matches('"');
            if registry.iter().any(|r| r == name) {
                continue;
            }
            self.emit(
                out,
                Lint::CounterNameDiscipline,
                arg,
                format!(
                    "metric name \"{name}\" is not in hetero_obs::counters::REGISTRY; \
                     register it there (or reuse a registered name) so obsdiff \
                     baselines cover it"
                ),
            );
        }
    }

    /// Non-`Relaxed` atomic orderings (`SeqCst`/`Acquire`/`Release`/
    /// `AcqRel`) need a `// ordering:` comment on the same or previous
    /// line stating the happens-before edge they establish.
    fn atomic_ordering(&self, comments: &[Comment], out: &mut Vec<Diagnostic>) {
        let justified: Vec<u32> = comments
            .iter()
            .filter(|c| c.text.contains("ordering:"))
            .map(|c| c.line)
            .collect();
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i)
                || tok.kind != TokenKind::Ident
                || !matches!(
                    tok.text.as_str(),
                    "SeqCst" | "Acquire" | "Release" | "AcqRel"
                )
            {
                continue;
            }
            // Only the atomic `Ordering` path, never `cmp::Ordering`
            // variants (`Less`/`Greater`) or unrelated identifiers.
            if i < 2 || self.text(i - 1) != "::" || self.text(i - 2) != "Ordering" {
                continue;
            }
            if justified.contains(&tok.line) || justified.contains(&tok.line.saturating_sub(1)) {
                continue;
            }
            self.emit(
                out,
                Lint::AtomicOrdering,
                tok,
                format!(
                    "`Ordering::{}` without a `// ordering:` justification; state the \
                     happens-before edge it establishes, or relax to `Relaxed`",
                    tok.text
                ),
            );
        }
    }

    fn emit_at(&self, out: &mut Vec<Diagnostic>, lint: Lint, line: u32, col: u32, message: String) {
        out.push(Diagnostic {
            lint,
            level: lint.level(),
            file: self.rel.to_string(),
            line,
            col,
            message,
        });
    }

    /// Whether an expression range carries float evidence: a float
    /// literal, an `f64`/`f32` token, or an identifier the dataflow
    /// proved float-valued.
    fn float_evidence(&self, flow: &VarFlow<'_>, (start, end): TokRange, env: &Env) -> bool {
        let _ = flow;
        for i in start..end {
            let Some(tok) = self.tokens.get(i) else { break };
            match tok.kind {
                TokenKind::Float => return true,
                TokenKind::Ident => {
                    if matches!(tok.text.as_str(), "f64" | "f32") {
                        return true;
                    }
                    let fact = env.get(tok.text.as_str()).copied().unwrap_or_default();
                    if fact.any(VarFact::FLOAT_SCALAR.union(VarFact::FLOAT_CONTAINER)) {
                        return true;
                    }
                }
                _ => {}
            }
        }
        false
    }

    /// Whether the range contains a `!`-invocation of an output or
    /// formatting macro.
    fn output_macro_in(&self, (start, end): TokRange) -> bool {
        (start..end).any(|i| {
            self.is_ident(i)
                && matches!(
                    self.text(i),
                    "write" | "writeln" | "print" | "println" | "eprint" | "eprintln" | "format"
                )
                && self.text(i + 1) == "!"
        })
    }

    /// The leaf expression ranges of a statement the range-based deep
    /// lints inspect.
    fn leaf_ranges(kind: &StmtKind) -> Vec<TokRange> {
        match kind {
            StmtKind::Let { ty, init, .. } => {
                let mut v = Vec::new();
                if let Some(t) = ty {
                    v.push(*t);
                }
                if let Some(i) = init {
                    v.push(*i);
                }
                v
            }
            StmtKind::Assign { target, value, .. } => vec![*target, *value],
            StmtKind::Expr(r) => vec![*r],
            _ => Vec::new(),
        }
    }

    /// The deep dataflow lints: naked float accumulation and
    /// nondeterministic hash iteration.
    fn dataflow_lints(&self, ast: &Ast, out: &mut Vec<Diagnostic>) {
        let flow = VarFlow::new(self.tokens);
        // core/symfunc float sums are already gated by `naked-sum`;
        // float-accum extends the same rule to every other library crate.
        let in_kernel =
            self.rel.starts_with("crates/core/src/") || self.rel.starts_with("crates/symfunc/src/");
        for f in &ast.fns {
            let Some(body) = &f.body else { continue };
            if !self.live(f.body_range.0) {
                continue; // test-only function
            }
            let cfg = lower(body);
            let init = VarFlow::init_env(&f.params);
            dataflow::visit(&cfg, &flow, init, |step, depth, env| match step {
                Step::Stmt(stmt) => {
                    if let StmtKind::Assign { target, op, value } = &stmt.kind {
                        if matches!(op.as_str(), "+=" | "-=") && depth >= 1 {
                            let root_fact = (target.0..target.1)
                                .find(|&i| self.is_ident(i))
                                .and_then(|i| env.get(self.text(i)))
                                .copied()
                                .unwrap_or_default();
                            let target_float = root_fact
                                .any(VarFact::FLOAT_SCALAR.union(VarFact::FLOAT_CONTAINER));
                            if target_float || self.float_evidence(&flow, *value, env) {
                                self.emit_at(
                                    out,
                                    Lint::FloatAccum,
                                    stmt.line,
                                    stmt.col,
                                    format!(
                                        "naked float accumulation (`{op}`) in a loop is \
                                         order-sensitive; accumulate through KahanSum / \
                                         hetero_core::numeric::kahan_sum"
                                    ),
                                );
                            }
                        }
                    }
                    for r in Self::leaf_ranges(&stmt.kind) {
                        if !in_kernel {
                            self.float_sum_in_range(&flow, r, env, stmt.line, stmt.col, out);
                        }
                        self.nondet_use_in_range(&flow, r, env, stmt.line, stmt.col, out);
                    }
                }
                Step::ForHeader(stmt) => {
                    if let StmtKind::For { iter, body, .. } = &stmt.kind {
                        let hash_rooted = flow.hash_iteration_root(*iter, env).is_some();
                        let unordered = flow.init_flags(*iter, env).has(VarFact::UNORDERED);
                        if hash_rooted || unordered {
                            if let Some(why) = self.order_sensitive(&flow, body, env) {
                                self.emit_at(
                                    out,
                                    Lint::NondetIteration,
                                    stmt.line,
                                    stmt.col,
                                    format!(
                                        "iteration order here is nondeterministic and the \
                                         loop body {why}; use BTreeMap/BTreeSet or sort \
                                         before the order-sensitive use"
                                    ),
                                );
                            }
                        }
                    }
                }
                Step::Cond(_) => {}
            });
        }
    }

    /// Float `.sum()` reductions outside the compensated helpers.
    fn float_sum_in_range(
        &self,
        flow: &VarFlow<'_>,
        r: TokRange,
        env: &Env,
        line: u32,
        col: u32,
        out: &mut Vec<Diagnostic>,
    ) {
        for i in r.0..r.1 {
            if self.text(i) != "." || self.text(i + 1) != "sum" || !self.is_ident(i + 1) {
                continue;
            }
            let fires = match self.text(i + 2) {
                "::" => matches!(self.text(i + 4), "f64" | "f32"),
                "(" => self.float_evidence(flow, r, env),
                _ => false,
            };
            if fires {
                self.emit_at(
                    out,
                    Lint::FloatAccum,
                    line,
                    col,
                    "bare float `.sum()` accumulates rounding error in iteration \
                     order; route through hetero_core::numeric::kahan_sum"
                        .into(),
                );
                return;
            }
        }
    }

    /// Order-sensitive uses of hash-derived data inside one expression:
    /// a hash iteration chained straight into a reduction, or an
    /// unsorted hash-derived value flowing into output/appends.
    fn nondet_use_in_range(
        &self,
        flow: &VarFlow<'_>,
        r: TokRange,
        env: &Env,
        line: u32,
        col: u32,
        out: &mut Vec<Diagnostic>,
    ) {
        let _ = flow;
        for i in r.0..r.1 {
            if !self.is_ident(i) {
                continue;
            }
            let fact = env.get(self.text(i)).copied().unwrap_or_default();
            if fact.has(VarFact::HASH_CONTAINER)
                && self.text(i + 1) == "."
                && HASH_ITER_METHODS.contains(&self.text(i + 2))
            {
                // Chained reduction: `m.values().sum()` / `.fold(..)`.
                let reduced = (i + 3..r.1).any(|j| {
                    self.text(j) == "."
                        && matches!(self.text(j + 1), "sum" | "fold" | "product")
                        && self.is_ident(j + 1)
                });
                if reduced {
                    self.emit_at(
                        out,
                        Lint::NondetIteration,
                        line,
                        col,
                        "hash iteration feeds a reduction; float reductions are \
                         order-sensitive — use a BTree collection or sort first"
                            .into(),
                    );
                    return;
                }
            }
            if fact.has(VarFact::UNORDERED)
                && (self.output_macro_in(r)
                    || ((i + 1..r.1.min(i + 3)).any(|j| self.text(j) == ".")
                        && matches!(self.text(i + 2), "push" | "extend")))
            {
                self.emit_at(
                    out,
                    Lint::NondetIteration,
                    line,
                    col,
                    "unsorted hash-derived data flows into output; sort the \
                     collect before presenting it"
                        .into(),
                );
                return;
            }
        }
    }

    /// Whether a loop body (over a nondeterministic order) does anything
    /// order-sensitive. Integer counters and inserts into maps/sets are
    /// order-free; float accumulation, appends, and output are not.
    fn order_sensitive(
        &self,
        flow: &VarFlow<'_>,
        block: &AstBlock,
        env: &Env,
    ) -> Option<&'static str> {
        for stmt in &block.stmts {
            match &stmt.kind {
                StmtKind::Assign { target, op, value } => {
                    if matches!(op.as_str(), "+=" | "-=" | "*=" | "/=") {
                        let root_float = (target.0..target.1)
                            .find(|&i| self.is_ident(i))
                            .and_then(|i| env.get(self.text(i)))
                            .copied()
                            .unwrap_or_default()
                            .any(VarFact::FLOAT_SCALAR.union(VarFact::FLOAT_CONTAINER));
                        if root_float || self.float_evidence(flow, *value, env) {
                            return Some("accumulates floats in that order");
                        }
                    }
                    if self.output_macro_in(*value) {
                        return Some("emits output in that order");
                    }
                }
                StmtKind::Let { init, .. } => {
                    if let Some(r) = init {
                        if self.output_macro_in(*r) {
                            return Some("emits output in that order");
                        }
                    }
                }
                StmtKind::Expr(r) => {
                    if self.output_macro_in(*r) {
                        return Some("emits output in that order");
                    }
                    let appends = (r.0..r.1).any(|i| {
                        self.text(i) == "."
                            && matches!(self.text(i + 1), "push" | "extend")
                            && self.is_ident(i + 1)
                            && self.text(i + 2) == "("
                    });
                    if appends {
                        return Some("appends to an ordered collection in that order");
                    }
                }
                StmtKind::For { body, .. }
                | StmtKind::While { body, .. }
                | StmtKind::Loop { body } => {
                    if let Some(why) = self.order_sensitive(flow, body, env) {
                        return Some(why);
                    }
                }
                StmtKind::If { then, els, .. } => {
                    if let Some(why) = self.order_sensitive(flow, then, env) {
                        return Some(why);
                    }
                    if let Some(e) = els {
                        if let Some(why) = self.order_sensitive(flow, e, env) {
                            return Some(why);
                        }
                    }
                }
                StmtKind::Match { arms, .. } => {
                    for arm in arms {
                        if let Some(why) = self.order_sensitive(flow, arm, env) {
                            return Some(why);
                        }
                    }
                }
                StmtKind::Nested(inner) => {
                    if let Some(why) = self.order_sensitive(flow, inner, env) {
                        return Some(why);
                    }
                }
            }
        }
        None
    }

    /// Harvests the per-function facts the call-graph pass consumes.
    fn collect_fn_facts(
        &self,
        ast: &Ast,
        src: &str,
        allows: &HashMap<(u32, Lint), String>,
    ) -> Vec<FnFacts> {
        let Some(krate) = self
            .rel
            .strip_prefix("crates/")
            .and_then(|r| r.split_once('/'))
            .map(|(k, _)| k.to_string())
        else {
            return Vec::new();
        };
        let lines: Vec<&str> = src.lines().collect();
        let mut facts = Vec::new();
        for f in &ast.fns {
            if f.body.is_none() || !self.live(f.body_range.0) {
                continue;
            }
            // Contiguous doc block above the declaration.
            let mut doc_panics = false;
            let mut l = f.line as usize - 1;
            while l >= 1 {
                let t = lines.get(l - 1).map(|s| s.trim_start()).unwrap_or("");
                if t.starts_with("///") {
                    if t.contains("# Panics") {
                        doc_panics = true;
                    }
                } else if !(t.starts_with("#[") || t.starts_with("//") || t == "pub") {
                    break;
                }
                l -= 1;
            }
            let mut strong: Option<String> = None;
            let mut indexing = false;
            let mut calls: Vec<String> = Vec::new();
            let (bstart, bend) = f.body_range;
            for i in bstart..bend.min(self.tokens.len()) {
                if !self.live(i) {
                    continue;
                }
                let tok = &self.tokens[i];
                match tok.kind {
                    TokenKind::Punct if tok.text == "." => {
                        let name = self.text(i + 1);
                        if matches!(name, "unwrap" | "expect")
                            && self.is_ident(i + 1)
                            && self.text(i + 2) == "("
                        {
                            let line = self.tokens[i + 1].line;
                            let justified = [Lint::Unwrap, Lint::Expect, Lint::PartialCmpUnwrap]
                                .iter()
                                .any(|l| allows.contains_key(&(line, *l)));
                            if !justified && strong.is_none() {
                                strong = Some(format!("calls `.{name}()` at line {line}"));
                            }
                        }
                    }
                    TokenKind::Punct if tok.text == "[" && i > bstart => {
                        let prev = &self.tokens[i - 1];
                        let indexable = match prev.kind {
                            TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
                            TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
                            _ => false,
                        };
                        if indexable && !allows.contains_key(&(tok.line, Lint::Indexing)) {
                            indexing = true;
                        }
                    }
                    TokenKind::Ident => {
                        if matches!(
                            tok.text.as_str(),
                            "panic" | "unreachable" | "todo" | "unimplemented"
                        ) && self.text(i + 1) == "!"
                        {
                            if !allows.contains_key(&(tok.line, Lint::Panic)) && strong.is_none() {
                                strong =
                                    Some(format!("invokes `{}!` at line {}", tok.text, tok.line));
                            }
                        } else if self.text(i + 1) == "(" && !KEYWORDS.contains(&tok.text.as_str())
                        {
                            let key = if i > 0 && self.text(i - 1) == "." {
                                format!(".{}", tok.text)
                            } else if i > 1 && self.text(i - 1) == "::" && self.is_ident(i - 2) {
                                format!("{}::{}", self.text(i - 2), tok.text)
                            } else {
                                tok.text.clone()
                            };
                            if !calls.contains(&key) {
                                calls.push(key);
                            }
                        }
                    }
                    _ => {}
                }
            }
            facts.push(FnFacts {
                file: self.rel.to_string(),
                krate: krate.clone(),
                name: f.name.clone(),
                qual: f.qual.clone(),
                is_pub: f.is_pub,
                line: f.line,
                col: f.col,
                doc_panics,
                strong,
                indexing,
                calls,
                allow_reason: allows.get(&(f.line, Lint::PanicPropagation)).cloned(),
            });
        }
        facts
    }

    /// Expression indexing (advisory).
    fn indexing(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.text != "[" || i == 0 {
                continue;
            }
            let prev = &self.tokens[i - 1];
            let indexable = match prev.kind {
                TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
                TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
                _ => false,
            };
            if indexable {
                self.emit(
                    out,
                    Lint::Indexing,
                    tok,
                    "slice indexing panics when out of bounds; prefer .get()/iterators \
                     where the index is not locally provable"
                        .into(),
                );
            }
        }
    }

    /// Library lib.rs must carry the policy headers.
    fn crate_policy(&self, src: &str, out: &mut Vec<Diagnostic>) {
        if !self.rel.ends_with("/src/lib.rs") {
            return;
        }
        let anchor = Token {
            kind: TokenKind::Punct,
            text: String::new(),
            line: 1,
            col: 1,
        };
        if !src.contains("#![forbid(unsafe_code)]") {
            self.emit(
                out,
                Lint::CratePolicy,
                &anchor,
                "library crate must declare `#![forbid(unsafe_code)]`".into(),
            );
        }
        if !src.contains("#![warn(missing_docs)]") && !src.contains("#![deny(missing_docs)]") {
            self.emit(
                out,
                Lint::CratePolicy,
                &anchor,
                "library crate must declare `#![warn(missing_docs)]`".into(),
            );
        }
    }

    /// Public items in the formula modules must cite the paper.
    fn paper_anchor(&self, src: &str, out: &mut Vec<Diagnostic>) {
        if !ANCHOR_FILES.contains(&self.rel) {
            return;
        }
        let lines: Vec<&str> = src.lines().collect();
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.kind != TokenKind::Ident || tok.text != "pub" {
                continue;
            }
            if self.text(i + 1) == "(" {
                continue; // pub(crate) etc. — not public API
            }
            let item = (1..=3).map(|d| self.text(i + d)).find(|t| {
                matches!(
                    *t,
                    "fn" | "struct" | "enum" | "const" | "type" | "static" | "trait"
                )
            });
            if item.is_none() {
                continue;
            }
            // Gather the contiguous doc block above the item.
            let mut doc = String::new();
            let mut l = tok.line as usize - 1; // index of the line above
            while l >= 1 {
                let t = lines.get(l - 1).map(|s| s.trim_start()).unwrap_or("");
                if t.starts_with("///") {
                    doc.push_str(t);
                    doc.push('\n');
                } else if !(t.starts_with("#[") || t.starts_with("//")) {
                    break;
                }
                l -= 1;
            }
            if !PAPER_ANCHORS.iter().any(|a| doc.contains(a)) {
                self.emit(
                    out,
                    Lint::PaperAnchor,
                    tok,
                    "public formula item must cite its source in the paper \
                     (Theorem/Proposition/Lemma/Corollary/Eq./§) in its doc comment"
                        .into(),
                );
            }
        }
    }

    /// `Profile { .. }` / `Params { .. }` literals outside their modules.
    fn constructor_discipline(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if tok.kind != TokenKind::Ident || !matches!(tok.text.as_str(), "Profile" | "Params") {
                continue;
            }
            let home = match tok.text.as_str() {
                "Profile" => "crates/core/src/profile.rs",
                _ => "crates/core/src/params.rs",
            };
            if self.rel == home || self.text(i + 1) != "{" {
                continue;
            }
            // `-> Params {` is a return type followed by the function
            // body, not a struct literal.
            if i > 0
                && matches!(
                    self.text(i - 1),
                    "struct" | "enum" | "union" | "impl" | "for" | "trait" | "mod" | "->"
                )
            {
                continue;
            }
            self.emit(
                out,
                Lint::ConstructorDiscipline,
                tok,
                format!(
                    "construct `{0}` through its validated constructors \
                     ({0}::new / from_unsorted), never a struct literal",
                    tok.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Lint;

    fn lints_of(rel: &str, src: &str) -> Vec<(Lint, u32)> {
        scan_file(rel, src)
            .diagnostics
            .iter()
            .map(|d| (d.lint, d.line))
            .collect()
    }

    const LIB: &str = "crates/core/src/demo.rs";

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/core/src/lib.rs"), FileClass::LibrarySrc);
        assert_eq!(classify("crates/cli/src/main.rs"), FileClass::BinSrc);
        assert_eq!(classify("crates/core/tests/props.rs"), FileClass::TestCode);
        assert_eq!(classify("crates/bench/benches/x.rs"), FileClass::BinSrc);
        assert_eq!(classify("shims/rand/src/lib.rs"), FileClass::Skip);
        assert_eq!(
            classify("crates/check/tests/fixtures/a/crates/x/src/lib.rs"),
            FileClass::Skip
        );
    }

    #[test]
    fn float_eq_fires_on_literals_only() {
        let found = lints_of(LIB, "fn f(x: f64) -> bool { x == 0.0 }");
        assert!(found.contains(&(Lint::FloatEq, 1)));
        let clean = lints_of(LIB, "fn f(x: usize) -> bool { x == 0 }");
        assert!(clean.iter().all(|(l, _)| *l != Lint::FloatEq));
    }

    #[test]
    fn partial_cmp_chain_detected_once() {
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let found = lints_of(LIB, src);
        assert!(found.contains(&(Lint::PartialCmpUnwrap, 1)));
        // The chained unwrap is reported by the specific lint, not both.
        assert!(found.iter().all(|(l, _)| *l != Lint::Unwrap));
    }

    #[test]
    fn naked_sum_scoped_to_kernels() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().sum() }";
        assert!(lints_of("crates/core/src/m.rs", src)
            .iter()
            .any(|(l, _)| *l == Lint::NakedSum));
        assert!(lints_of("crates/linalg/src/m.rs", src)
            .iter()
            .all(|(l, _)| *l != Lint::NakedSum));
        // Integer turbofish sums are fine.
        let int = "fn f(v: &[usize]) -> usize { v.iter().sum::<usize>() }";
        assert!(lints_of("crates/core/src/m.rs", int)
            .iter()
            .all(|(l, _)| *l != Lint::NakedSum));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) { x.unwrap(); }\n}";
        assert!(lints_of(LIB, src).is_empty());
        let live = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(lints_of(LIB, live).iter().any(|(l, _)| *l == Lint::Unwrap));
    }

    #[test]
    fn sim_time_unchecked_scoped_outside_the_simulator() {
        let src = "fn f() -> SimTime { SimTime::new(1.0) }";
        assert!(lints_of("crates/protocol/src/m.rs", src)
            .iter()
            .any(|(l, _)| *l == Lint::SimTimeUnchecked));
        // The simulator crate owns and validates the type.
        assert!(lints_of("crates/sim/src/m.rs", src)
            .iter()
            .all(|(l, _)| *l != Lint::SimTimeUnchecked));
        // Test code and the fallible API are exempt.
        let test = "#[cfg(test)]\nmod tests {\n fn f() -> SimTime { SimTime::new(1.0) }\n}";
        assert!(lints_of("crates/protocol/src/m.rs", test)
            .iter()
            .all(|(l, _)| *l != Lint::SimTimeUnchecked));
        let try_new = "fn f() -> Result<SimTime, NonFiniteTime> { SimTime::try_new(1.0) }";
        assert!(lints_of("crates/protocol/src/m.rs", try_new)
            .iter()
            .all(|(l, _)| *l != Lint::SimTimeUnchecked));
    }

    #[test]
    fn thread_spawn_scoped_outside_par() {
        let spawn = "pub fn f() { std::thread::spawn(|| {}); }";
        assert!(lints_of("crates/core/src/m.rs", spawn)
            .iter()
            .any(|(l, _)| *l == Lint::ThreadSpawnOutsidePar));
        let bare = "pub fn f() { thread::spawn(|| {}); }";
        assert!(lints_of("crates/core/src/m.rs", bare)
            .iter()
            .any(|(l, _)| *l == Lint::ThreadSpawnOutsidePar));
        let scope = "pub fn f() { crossbeam::scope(|s| {}).ok(); }";
        assert!(lints_of("crates/clustergen/src/m.rs", scope)
            .iter()
            .any(|(l, _)| *l == Lint::ThreadSpawnOutsidePar));
        let nested = "pub fn f() { crossbeam::thread::scope(|s| {}).ok(); }";
        assert!(lints_of("crates/clustergen/src/m.rs", nested)
            .iter()
            .any(|(l, _)| *l == Lint::ThreadSpawnOutsidePar));
        // The pool crate owns thread creation.
        assert!(lints_of("crates/par/src/pool.rs", spawn)
            .iter()
            .all(|(l, _)| *l != Lint::ThreadSpawnOutsidePar));
        // Non-spawning thread APIs stay legal everywhere.
        let probe = "pub fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }";
        assert!(lints_of("crates/core/src/m.rs", probe)
            .iter()
            .all(|(l, _)| *l != Lint::ThreadSpawnOutsidePar));
        // Test modules are exempt, as for every lint.
        let test = "#[cfg(test)]\nmod tests {\n fn f() { std::thread::spawn(|| {}); }\n}";
        assert!(lints_of("crates/core/src/m.rs", test)
            .iter()
            .all(|(l, _)| *l != Lint::ThreadSpawnOutsidePar));
    }

    #[test]
    fn approx_math_gated_to_the_kernel_modules() {
        let rcp = "pub fn f(d: f64) -> f64 { rcp_seed(d) }";
        assert!(lints_of("crates/core/src/m.rs", rcp)
            .iter()
            .any(|(l, _)| *l == Lint::ApproxMathOutsideKernel));
        let newton = "pub fn f(r: f64, d: f64) -> f64 { newton_refine(r, d) }";
        assert!(lints_of("crates/protocol/src/m.rs", newton)
            .iter()
            .any(|(l, _)| *l == Lint::ApproxMathOutsideKernel));
        let simd = "pub fn f(d: __m512d) -> __m512d { _mm512_rcp14_pd(d) }";
        assert!(
            lints_of("crates/obs/src/m.rs", simd)
                .iter()
                .filter(|(l, _)| *l == Lint::ApproxMathOutsideKernel)
                .count()
                >= 3,
            "type and intrinsic idents all fire"
        );
        // The two designated modules are exempt.
        assert!(lints_of("crates/simd/src/lib.rs", rcp)
            .iter()
            .all(|(l, _)| *l != Lint::ApproxMathOutsideKernel));
        assert!(lints_of("crates/core/src/fastnum.rs", rcp)
            .iter()
            .all(|(l, _)| *l != Lint::ApproxMathOutsideKernel));
        // Benign identifiers that merely contain the letters stay legal.
        let benign = "pub fn f(percept: f64) -> f64 { intercept(percept) }";
        assert!(lints_of("crates/core/src/m.rs", benign)
            .iter()
            .all(|(l, _)| *l != Lint::ApproxMathOutsideKernel));
        // Test modules are exempt, as for every lint.
        let test = "#[cfg(test)]\nmod tests {\n fn f() { rcp_seed(1.0); }\n}";
        assert!(lints_of("crates/core/src/m.rs", test)
            .iter()
            .all(|(l, _)| *l != Lint::ApproxMathOutsideKernel));
    }

    #[test]
    fn print_in_lib_fires_on_macros_only() {
        let src = "pub fn f(x: f64) { println!(\"{x}\"); }";
        assert!(lints_of(LIB, src)
            .iter()
            .any(|(l, _)| *l == Lint::PrintInLib));
        let eprint = "pub fn f(x: f64) { eprintln!(\"{x}\"); }";
        assert!(lints_of(LIB, eprint)
            .iter()
            .any(|(l, _)| *l == Lint::PrintInLib));
        // A method named `print` is not the macro.
        let method = "pub fn f(d: &Doc) { d.print(); }";
        assert!(lints_of(LIB, method)
            .iter()
            .all(|(l, _)| *l != Lint::PrintInLib));
        // `writeln!` to a buffer is the sanctioned idiom.
        let writeln = "pub fn f(out: &mut String, x: f64) { let _ = writeln!(out, \"{x}\"); }";
        assert!(lints_of(LIB, writeln)
            .iter()
            .all(|(l, _)| *l != Lint::PrintInLib));
        // Binaries may print; that is their job.
        let bin = "fn main() { println!(\"hi\"); }";
        assert!(lints_of("crates/cli/src/main.rs", bin)
            .iter()
            .all(|(l, _)| *l != Lint::PrintInLib));
        // Test modules are exempt like every other lint.
        let test = "#[cfg(test)]\nmod tests {\n fn f() { println!(\"dbg\"); }\n}";
        assert!(lints_of(LIB, test).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_with_reason() {
        let src = "fn f(x: Option<u8>) {\n    // hetero-check: allow(unwrap) — checked above\n    x.unwrap();\n}";
        let scan = scan_file(LIB, src);
        assert!(scan.diagnostics.is_empty());
        assert_eq!(scan.suppressed.len(), 1);
        assert_eq!(scan.suppressed[0].reason, "checked above");
    }

    #[test]
    fn allow_comment_without_reason_is_flagged() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap(); // hetero-check: allow(unwrap)\n}";
        let found = lints_of(LIB, src);
        assert!(found.iter().any(|(l, _)| *l == Lint::AllowMissingReason));
        // And the unwrap still stands.
        assert!(found.iter().any(|(l, _)| *l == Lint::Unwrap));
    }

    #[test]
    fn constructor_discipline_outside_home_module() {
        let src = "fn f() { let p = Profile { rhos: vec![] }; }";
        assert!(lints_of("crates/sim/src/lib.rs", src)
            .iter()
            .any(|(l, _)| *l == Lint::ConstructorDiscipline));
        // The defining module itself is exempt.
        assert!(
            lints_of("crates/core/src/profile.rs", src)
                .iter()
                .all(|(l, _)| *l != Lint::ConstructorDiscipline),
            "home module may build its own struct"
        );
        // impl blocks are not literals.
        assert!(lints_of("crates/sim/src/lib.rs", "impl Profile { }")
            .iter()
            .all(|(l, _)| *l != Lint::ConstructorDiscipline));
    }

    #[test]
    fn paper_anchor_on_formula_modules() {
        let with = "/// Computes X (Theorem 1).\npub fn x() {}\n";
        let without = "/// Computes something.\npub fn x() {}\n";
        assert!(lints_of("crates/core/src/xmeasure.rs", with)
            .iter()
            .all(|(l, _)| *l != Lint::PaperAnchor));
        assert!(lints_of("crates/core/src/xmeasure.rs", without)
            .iter()
            .any(|(l, _)| *l == Lint::PaperAnchor));
        // Other files are not anchor-checked.
        assert!(lints_of("crates/core/src/profile.rs", without)
            .iter()
            .all(|(l, _)| *l != Lint::PaperAnchor));
    }

    #[test]
    fn crate_policy_checks_lib_headers() {
        let bad = "pub fn f() {}";
        let found = lints_of("crates/demo/src/lib.rs", bad);
        assert_eq!(
            found
                .iter()
                .filter(|(l, _)| *l == Lint::CratePolicy)
                .count(),
            2
        );
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}";
        assert!(lints_of("crates/demo/src/lib.rs", good)
            .iter()
            .all(|(l, _)| *l != Lint::CratePolicy));
    }

    #[test]
    fn float_accum_needs_proven_float_in_a_loop() {
        // Proven float accumulator in a loop fires.
        let src = "pub fn f(xs: &[f64]) -> f64 { let mut s = 0.0; for x in xs { s += x; } s }";
        assert!(lints_of("crates/linalg/src/m.rs", src)
            .iter()
            .any(|(l, _)| *l == Lint::FloatAccum));
        // Integer accumulation stays silent.
        let int = "pub fn f(xs: &[u64]) -> u64 { let mut s = 0; for x in xs { s += x; } s }";
        assert!(lints_of("crates/linalg/src/m.rs", int)
            .iter()
            .all(|(l, _)| *l != Lint::FloatAccum));
        // Outside a loop a single `+=` is not an accumulation chain.
        let straight = "pub fn f(mut s: f64, x: f64) -> f64 { s += x; s }";
        assert!(lints_of("crates/linalg/src/m.rs", straight)
            .iter()
            .all(|(l, _)| *l != Lint::FloatAccum));
        // An explicit non-float ascription defeats float-ish initialisers.
        let ascribed = "pub fn f(w: &[f64]) { let mut n: Vec<u64> = w.iter().map(|x| *x as u64).collect(); for i in 0..n.len() { n[i] += 1; } }";
        assert!(lints_of("crates/linalg/src/m.rs", ascribed)
            .iter()
            .all(|(l, _)| *l != Lint::FloatAccum));
        // Float `.sum()` fires outside the kernels (there `naked-sum` owns it).
        let sum = "pub fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert!(lints_of("crates/linalg/src/m.rs", sum)
            .iter()
            .any(|(l, _)| *l == Lint::FloatAccum));
        assert!(lints_of("crates/core/src/m.rs", sum)
            .iter()
            .all(|(l, _)| *l != Lint::FloatAccum));
    }

    #[test]
    fn nondet_iteration_needs_order_sensitivity() {
        // Hash iteration accumulating floats fires.
        let hot = "pub fn f(m: &HashMap<u32, f64>) -> f64 { let mut s = 0.0; for v in m.values() { s += v; } s }";
        assert!(lints_of("crates/sim/src/m.rs", hot)
            .iter()
            .any(|(l, _)| *l == Lint::NondetIteration));
        // Hash iteration chained into a reduction fires.
        let chain =
            "pub fn f(m: &HashMap<u32, f64>) -> f64 { m.values().fold(0.0, |a, b| a.max(*b)) }";
        assert!(lints_of("crates/sim/src/m.rs", chain)
            .iter()
            .any(|(l, _)| *l == Lint::NondetIteration));
        // Order-free bodies (integer counting) stay silent.
        let count = "pub fn f(m: &HashMap<u32, u32>) -> u64 { let mut n = 0; for _v in m.values() { n += 1; } n }";
        assert!(lints_of("crates/sim/src/m.rs", count)
            .iter()
            .all(|(l, _)| *l != Lint::NondetIteration));
        // A sorted collect launders the order.
        let sorted = "pub fn f(m: &HashMap<u32, u32>, out: &mut String) { let mut v: Vec<_> = m.keys().collect(); v.sort(); for k in v { let _ = writeln!(out, \"{k}\"); } }";
        assert!(lints_of("crates/sim/src/m.rs", sorted)
            .iter()
            .all(|(l, _)| *l != Lint::NondetIteration));
        // Unsorted hash-derived data into output fires.
        let unsorted = "pub fn f(m: &HashMap<u32, u32>, out: &mut String) { let v: Vec<_> = m.keys().collect(); for k in v { let _ = writeln!(out, \"{k}\"); } }";
        assert!(lints_of("crates/sim/src/m.rs", unsorted)
            .iter()
            .any(|(l, _)| *l == Lint::NondetIteration));
    }

    #[test]
    fn wall_clock_scoped_outside_obs() {
        let src = "pub fn f() -> Instant { Instant::now() }";
        assert!(lints_of("crates/core/src/m.rs", src)
            .iter()
            .any(|(l, _)| *l == Lint::WallClockInLib));
        let sys = "pub fn f() { let _ = SystemTime::now(); }";
        assert!(lints_of("crates/protocol/src/m.rs", sys)
            .iter()
            .any(|(l, _)| *l == Lint::WallClockInLib));
        // The observability crate owns real time.
        assert!(lints_of("crates/obs/src/m.rs", src)
            .iter()
            .all(|(l, _)| *l != Lint::WallClockInLib));
        // Binaries may read the clock.
        assert!(lints_of("crates/cli/src/main.rs", src)
            .iter()
            .all(|(l, _)| *l != Lint::WallClockInLib));
        // A `use` statement alone does not fire; only the call does.
        let import = "use std::time::Instant;\npub fn f(t: Instant) -> Instant { t }";
        assert!(lints_of("crates/core/src/m.rs", import)
            .iter()
            .all(|(l, _)| *l != Lint::WallClockInLib));
    }

    #[test]
    fn atomic_ordering_needs_justification() {
        let bare = "pub fn f(x: &AtomicBool) { x.store(true, Ordering::SeqCst); }";
        assert!(lints_of("crates/obs/src/m.rs", bare)
            .iter()
            .any(|(l, _)| *l == Lint::AtomicOrdering));
        let justified = "pub fn f(x: &AtomicBool) {\n    // ordering: publishes init to readers\n    x.store(true, Ordering::SeqCst);\n}";
        assert!(lints_of("crates/obs/src/m.rs", justified)
            .iter()
            .all(|(l, _)| *l != Lint::AtomicOrdering));
        // Relaxed needs no justification.
        let relaxed = "pub fn f(x: &AtomicBool) { x.store(true, Ordering::Relaxed); }";
        assert!(lints_of("crates/obs/src/m.rs", relaxed)
            .iter()
            .all(|(l, _)| *l != Lint::AtomicOrdering));
        // `cmp::Ordering::Less` never fires.
        let cmp = "pub fn f(a: u32, b: u32) -> bool { a.cmp(&b) == Ordering::Less }";
        assert!(lints_of("crates/core/src/m.rs", cmp)
            .iter()
            .all(|(l, _)| *l != Lint::AtomicOrdering));
    }

    #[test]
    fn fn_facts_feed_the_call_graph() {
        let src = "/// Docs.\npub fn risky(x: Option<u8>) -> u8 { x.unwrap() }\n\n/// Docs.\n///\n/// # Panics\n/// Panics when `x` is `None`.\npub fn documented(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let scan = scan_file("crates/core/src/m.rs", src);
        let risky = scan.fn_facts.iter().find(|f| f.name == "risky").unwrap();
        assert!(risky.strong.is_some());
        assert!(!risky.doc_panics);
        let documented = scan
            .fn_facts
            .iter()
            .find(|f| f.name == "documented")
            .unwrap();
        assert!(documented.doc_panics);
        // Allow-justified unwraps are not strong facts.
        let allowed = "pub fn safe(x: Option<u8>) -> u8 {\n    // hetero-check: allow(unwrap) — checked by caller\n    x.unwrap()\n}";
        let scan = scan_file("crates/core/src/m.rs", allowed);
        assert!(scan.fn_facts[0].strong.is_none());
        // Calls are harvested with their shape.
        let calls = "pub fn top(p: &Pool) { helper(); Pool::build(); p.map(); }";
        let scan = scan_file("crates/core/src/m.rs", calls);
        let keys = &scan.fn_facts[0].calls;
        assert!(keys.contains(&"helper".to_string()));
        assert!(keys.contains(&"Pool::build".to_string()));
        assert!(keys.contains(&".map".to_string()));
    }

    #[test]
    fn indexing_is_advisory() {
        let src = "fn f(v: &[f64]) -> f64 { v[0] }";
        let scan = scan_file(LIB, src);
        let idx: Vec<_> = scan
            .diagnostics
            .iter()
            .filter(|d| d.lint == Lint::Indexing)
            .collect();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx[0].level, crate::diag::Level::Warn);
    }

    fn names_of(rel: &str, src: &str, registry: &[&str]) -> Vec<(Lint, u32)> {
        let reg: Vec<String> = registry.iter().map(|s| s.to_string()).collect();
        scan_file_with_registry(rel, src, Some(&reg))
            .diagnostics
            .iter()
            .map(|d| (d.lint, d.line))
            .collect()
    }

    #[test]
    fn counter_name_discipline_checks_literals_against_the_registry() {
        let src = "pub fn f() { hetero_obs::count(\"a.b\", 1); }";
        let found = names_of(LIB, src, &["a.b"]);
        assert!(found.iter().all(|(l, _)| *l != Lint::CounterNameDiscipline));
        let found = names_of(LIB, src, &["other"]);
        assert!(found.contains(&(Lint::CounterNameDiscipline, 1)));
        // Every recorder entry point is covered.
        let sketch = "pub fn f() { hetero_obs::sketch(\"x.y\", 2.0); }";
        assert!(names_of(LIB, sketch, &[]).contains(&(Lint::CounterNameDiscipline, 1)));
    }

    #[test]
    fn counter_name_discipline_skips_dynamic_names_and_binaries() {
        // Non-literal names cannot be checked statically: stay silent.
        let dynamic = "pub fn f(n: &str) { hetero_obs::count(n, 1); }";
        assert!(names_of(LIB, dynamic, &[])
            .iter()
            .all(|(l, _)| *l != Lint::CounterNameDiscipline));
        // Binaries may record ad-hoc names.
        let src = "pub fn f() { hetero_obs::count(\"ad.hoc\", 1); }";
        assert!(names_of("crates/cli/src/main.rs", src, &[])
            .iter()
            .all(|(l, _)| *l != Lint::CounterNameDiscipline));
        // No registry on disk: the lint is inert rather than noisy.
        assert!(lints_of(LIB, src)
            .iter()
            .all(|(l, _)| *l != Lint::CounterNameDiscipline));
    }

    #[test]
    fn counter_name_discipline_honours_allow_comments() {
        let src = "pub fn f() {\n    // hetero-check: allow(counter-name-discipline) — migration shim\n    hetero_obs::count(\"legacy.name\", 1);\n}";
        let reg: Vec<String> = Vec::new();
        let scan = scan_file_with_registry(LIB, src, Some(&reg));
        assert!(scan
            .diagnostics
            .iter()
            .all(|d| d.lint != Lint::CounterNameDiscipline));
        assert!(scan
            .suppressed
            .iter()
            .any(|s| s.diag.lint == Lint::CounterNameDiscipline));
    }
}
