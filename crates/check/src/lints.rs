//! The lint passes: token-stream rules, file classification, allow
//! comments, and per-file scanning.

use crate::diag::{Diagnostic, Lint, Suppressed};
use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::HashMap;

/// How a file participates in linting, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `src/` of a library crate: all lints apply.
    LibrarySrc,
    /// `src/` of a binary/tool crate, benches, examples: float hygiene
    /// and constructor discipline only (panics are acceptable at the
    /// process boundary).
    BinSrc,
    /// Tests: constructor discipline only.
    TestCode,
    /// Not linted (shims, fixtures, generated output).
    Skip,
}

/// Crates whose `src/` is treated as [`FileClass::BinSrc`].
const BIN_CRATES: &[&str] = &["cli", "experiments", "bench", "check"];

/// Rust keywords, used to avoid misreading syntax as expressions.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "macro", "match", "mod",
    "move", "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait",
    "true", "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// Doc-comment substrings accepted as paper anchors.
const PAPER_ANCHORS: &[&str] = &[
    "Theorem",
    "Proposition",
    "Lemma",
    "Corollary",
    "Definition",
    "Observation",
    "Eq.",
    "Eq (",
    "§",
    "Section",
];

/// Files whose public items must cite the paper.
const ANCHOR_FILES: &[&str] = &[
    "crates/core/src/xmeasure.rs",
    "crates/core/src/hecr.rs",
    "crates/core/src/speedup.rs",
    "crates/core/src/xengine.rs",
];

/// Classifies a forward-slash path relative to the workspace root.
pub fn classify(rel: &str) -> FileClass {
    if rel.starts_with("shims/")
        || rel.starts_with("target/")
        || rel.contains("/fixtures/")
        || rel.contains("/target/")
    {
        return FileClass::Skip;
    }
    if rel.starts_with("examples/") || rel.contains("/benches/") {
        return FileClass::BinSrc;
    }
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        return FileClass::TestCode;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((krate, tail)) = rest.split_once('/') {
            if tail.starts_with("src/") {
                return if BIN_CRATES.contains(&krate) {
                    FileClass::BinSrc
                } else {
                    FileClass::LibrarySrc
                };
            }
        }
    }
    FileClass::Skip
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Findings that stand (not allow-suppressed).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings an allow comment waived, with the stated reason.
    pub suppressed: Vec<Suppressed>,
}

/// Scans one file's source, returning its diagnostics.
pub fn scan_file(rel: &str, src: &str) -> FileScan {
    let class = classify(rel);
    if class == FileClass::Skip {
        return FileScan::default();
    }
    let lexed = lex(src);
    let mask = test_mask(&lexed.tokens);
    let (allows, mut raw) = parse_allows(rel, &lexed.comments);

    let cx = Cx {
        rel,
        tokens: &lexed.tokens,
        in_test: &mask,
    };

    if matches!(class, FileClass::LibrarySrc | FileClass::BinSrc) {
        cx.float_eq(&mut raw);
        let chained = cx.partial_cmp_unwrap(&mut raw);
        if class == FileClass::LibrarySrc {
            cx.naked_sum(&mut raw);
            cx.unwrap_expect(&mut raw, &chained);
            cx.panics(&mut raw);
            cx.print_in_lib(&mut raw);
            // The simulator crate owns SimTime and validates inside
            // `new` itself; everyone else must use the fallible API.
            if !rel.starts_with("crates/sim/src/") {
                cx.sim_time_unchecked(&mut raw);
            }
            // hetero-par owns thread creation; everyone else goes
            // through its pool so fan-out stays deterministic and
            // panic-contained.
            if !rel.starts_with("crates/par/src/") {
                cx.thread_spawn_outside_par(&mut raw);
            }
            cx.indexing(&mut raw);
            cx.crate_policy(src, &mut raw);
            cx.paper_anchor(src, &mut raw);
        }
    }
    cx.constructor_discipline(&mut raw);

    // Apply allow comments: a suppression covers its own line and the
    // following line, so it can sit inline or immediately above.
    let mut out = FileScan::default();
    for diag in raw {
        match allows.get(&(diag.line, diag.lint)) {
            Some(reason) if diag.lint != Lint::AllowMissingReason => {
                out.suppressed.push(Suppressed {
                    diag,
                    reason: reason.clone(),
                })
            }
            _ => out.diagnostics.push(diag),
        }
    }
    out.diagnostics.sort_by_key(|d| (d.line, d.col));
    out
}

/// Parses `// hetero-check: allow(<lints>) — <reason>` comments. Returns
/// the suppression map keyed by (covered line, lint) plus diagnostics for
/// malformed comments.
fn parse_allows(
    rel: &str,
    comments: &[Comment],
) -> (HashMap<(u32, Lint), String>, Vec<Diagnostic>) {
    let mut map = HashMap::new();
    let mut diags = Vec::new();
    for c in comments {
        // Suppressions must be plain `//` comments; doc comments merely
        // *describing* the syntax are not suppressions.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(at) = c.text.find("hetero-check:") else {
            continue;
        };
        let rest = c.text[at + "hetero-check:".len()..].trim_start();
        let mut bad = |msg: String| {
            diags.push(Diagnostic {
                lint: Lint::AllowMissingReason,
                level: Lint::AllowMissingReason.level(),
                file: rel.to_string(),
                line: c.line,
                col: 1,
                message: msg,
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            bad(
                "malformed hetero-check comment; expected `hetero-check: allow(<lint>) — <reason>`"
                    .into(),
            );
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("unclosed `allow(` in hetero-check comment".into());
            continue;
        };
        let mut lints = Vec::new();
        let mut unknown = false;
        for id in args[..close].split(',') {
            let id = id.trim();
            match Lint::from_name(id) {
                Some(l) => lints.push(l),
                None => {
                    bad(format!("unknown lint `{id}` in allow comment"));
                    unknown = true;
                }
            }
        }
        if unknown {
            continue;
        }
        let reason = args[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim();
        if reason.is_empty() {
            bad("allow comment has no justification; write `allow(<lint>) — <reason>`".into());
            continue;
        }
        for lint in lints {
            map.insert((c.line, lint), reason.to_string());
            map.insert((c.line + 1, lint), reason.to_string());
        }
    }
    (map, diags)
}

/// Marks tokens belonging to `#[test]` / `#[cfg(test)]` items so the
/// panic-freedom and float lints skip test-only code embedded in `src/`.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Walk the attribute, noting whether it mentions `test` (and is
        // not a `cfg(not(test))`).
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut has_test = false;
        let mut has_not = false;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" if tokens[j].kind == TokenKind::Ident => has_test = true,
                "not" if tokens[j].kind == TokenKind::Ident => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then mark through the end of the
        // annotated item (`;` at depth 0, or the matching close brace).
        let mut k = j + 1;
        while k + 1 < tokens.len() && tokens[k].text == "#" && tokens[k + 1].text == "[" {
            let mut d = 0i32;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut d = 0i32;
        let mut end = k;
        while end < tokens.len() {
            match tokens[end].text.as_str() {
                "{" | "(" | "[" => d += 1,
                "}" | ")" | "]" => {
                    d -= 1;
                    if d == 0 && tokens[end].text == "}" {
                        break;
                    }
                }
                ";" if d == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let end = end.min(tokens.len().saturating_sub(1));
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

struct Cx<'a> {
    rel: &'a str,
    tokens: &'a [Token],
    in_test: &'a [bool],
}

impl<'a> Cx<'a> {
    fn emit(&self, out: &mut Vec<Diagnostic>, lint: Lint, tok: &Token, message: String) {
        out.push(Diagnostic {
            lint,
            level: lint.level(),
            file: self.rel.to_string(),
            line: tok.line,
            col: tok.col,
            message,
        });
    }

    fn live(&self, i: usize) -> bool {
        !self.in_test.get(i).copied().unwrap_or(false)
    }

    fn text(&self, i: usize) -> &str {
        self.tokens.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn is_ident(&self, i: usize) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    }

    /// `==` / `!=` with a float literal on either side.
    fn float_eq(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || !matches!(tok.text.as_str(), "==" | "!=") {
                continue;
            }
            let float_neighbour = [i.wrapping_sub(1), i + 1].iter().any(|&j| {
                self.tokens
                    .get(j)
                    .is_some_and(|t| t.kind == TokenKind::Float)
            });
            if float_neighbour {
                self.emit(
                    out,
                    Lint::FloatEq,
                    tok,
                    "exact float comparison; use a named epsilon, or document the exact \
                     sentinel with `// hetero-check: allow(float-eq) — <why exactness holds>`"
                        .into(),
                );
            }
        }
    }

    /// `partial_cmp(..)` chained into `unwrap` / `expect` / `unwrap_or*`.
    /// Returns the token indices of the chained method names so the
    /// generic unwrap/expect pass does not double-report them.
    fn partial_cmp_unwrap(&self, out: &mut Vec<Diagnostic>) -> Vec<usize> {
        let mut chained = Vec::new();
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.text != "partial_cmp" || tok.kind != TokenKind::Ident {
                continue;
            }
            if self.text(i + 1) != "(" {
                continue;
            }
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < self.tokens.len() {
                match self.text(j) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if self.text(j + 1) == "."
                && matches!(
                    self.text(j + 2),
                    "unwrap" | "expect" | "unwrap_or" | "unwrap_or_else"
                )
            {
                chained.push(j + 2);
                self.emit(
                    out,
                    Lint::PartialCmpUnwrap,
                    tok,
                    format!(
                        "partial_cmp(..).{}(..) is not a total order over floats; \
                         sort with f64::total_cmp (or Ord::cmp for exact types)",
                        self.text(j + 2)
                    ),
                );
            }
        }
        chained
    }

    /// Bare `.sum()` in the numerical kernels (core, symfunc).
    fn naked_sum(&self, out: &mut Vec<Diagnostic>) {
        if !(self.rel.starts_with("crates/core/src/")
            || self.rel.starts_with("crates/symfunc/src/"))
        {
            return;
        }
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.text != "." {
                continue;
            }
            if self.text(i + 1) != "sum" || !self.is_ident(i + 1) {
                continue;
            }
            // `.sum::<T>()` with a non-float T is fine; `.sum::<f64>()`
            // and untyped `.sum()` (which may resolve to f64) are not.
            match self.text(i + 2) {
                "::" => {
                    let ty = self.text(i + 4);
                    if ty != "f64" && ty != "f32" {
                        continue;
                    }
                }
                "(" => {}
                _ => continue,
            }
            self.emit(
                out,
                Lint::NakedSum,
                &self.tokens[i + 1],
                "bare float summation accumulates rounding error in the kernels; \
                 route through hetero_core::numeric::kahan_sum (or annotate an \
                 integer sum with an allow comment)"
                    .into(),
            );
        }
    }

    /// `.unwrap()` / `.expect(..)` in library code.
    fn unwrap_expect(&self, out: &mut Vec<Diagnostic>, chained: &[usize]) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.text != "." {
                continue;
            }
            let name = self.text(i + 1);
            if !matches!(name, "unwrap" | "expect") || !self.is_ident(i + 1) {
                continue;
            }
            if self.text(i + 2) != "(" || chained.contains(&(i + 1)) {
                continue;
            }
            let lint = if name == "unwrap" {
                Lint::Unwrap
            } else {
                Lint::Expect
            };
            self.emit(
                out,
                lint,
                &self.tokens[i + 1],
                format!(
                    "`.{name}()` can panic in library code; return a Result, make the \
                     invariant unrepresentable, or justify it with \
                     `// hetero-check: allow({})` — <why it cannot fire>",
                    lint.name()
                ),
            );
        }
    }

    /// `panic!` family in library code.
    fn panics(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i)
                || tok.kind != TokenKind::Ident
                || !matches!(
                    tok.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
            {
                continue;
            }
            if self.text(i + 1) != "!" {
                continue;
            }
            self.emit(
                out,
                Lint::Panic,
                tok,
                format!(
                    "`{}!` aborts library callers; return an error or prove the branch \
                     impossible (allow comment with justification if it is)",
                    tok.text
                ),
            );
        }
    }

    /// `println!` / `eprintln!` / `print!` / `eprint!` in library code.
    /// Libraries must return data and let binaries decide how to present
    /// it; ad-hoc printing bypasses the structured observability layer
    /// (`hetero-obs`) and corrupts machine-readable CLI output.
    fn print_in_lib(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i)
                || tok.kind != TokenKind::Ident
                || !matches!(
                    tok.text.as_str(),
                    "println" | "print" | "eprintln" | "eprint"
                )
            {
                continue;
            }
            if self.text(i + 1) != "!" {
                continue;
            }
            // `writeln!`-style targets are fine; a preceding `.` means this
            // is a method/field named e.g. `print`, not the macro.
            if i > 0 && self.text(i - 1) == "." {
                continue;
            }
            self.emit(
                out,
                Lint::PrintInLib,
                tok,
                format!(
                    "`{}!` in library code writes to the process's stdio behind the \
                     caller's back; return the text, or record it through hetero-obs",
                    tok.text
                ),
            );
        }
    }

    /// `SimTime::new` panics on non-finite input; library code outside
    /// the simulator crate (which owns and validates the type) must use
    /// `SimTime::try_new` and propagate the typed error instead —
    /// fault-injected schedules make non-finite times reachable.
    fn sim_time_unchecked(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.kind != TokenKind::Ident || tok.text != "SimTime" {
                continue;
            }
            if self.text(i + 1) != "::" || self.text(i + 2) != "new" {
                continue;
            }
            // `new` must be a call, not a path segment like
            // `SimTime::new_unchecked` (the lexer splits idents, so this
            // is just the `(` check).
            if self.text(i + 3) != "(" {
                continue;
            }
            self.emit(
                out,
                Lint::SimTimeUnchecked,
                tok,
                "`SimTime::new` panics on non-finite input; outside hetero-sim use \
                 `SimTime::try_new` and propagate the error — fault-injected \
                 schedules make non-finite times reachable"
                    .to_string(),
            );
        }
    }

    /// Ad-hoc thread creation outside `crates/par`: `thread::spawn` and
    /// raw `crossbeam` scopes bypass the worker pool's seeded
    /// determinism, panic containment, and `HETERO_THREADS` sizing, so
    /// library code must fan out through `hetero_par::Pool` instead.
    /// (`thread::available_parallelism` and friends stay legal — only
    /// the spawning entry points are gated.)
    fn thread_spawn_outside_par(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.kind != TokenKind::Ident {
                continue;
            }
            let spawn = tok.text == "thread"
                && self.text(i + 1) == "::"
                && self.text(i + 2) == "spawn"
                && self.text(i + 3) == "(";
            let scope = tok.text == "crossbeam"
                && self.text(i + 1) == "::"
                && ((self.text(i + 2) == "scope" && self.text(i + 3) == "(")
                    || (self.text(i + 2) == "thread"
                        && self.text(i + 3) == "::"
                        && self.text(i + 4) == "scope"
                        && self.text(i + 5) == "("));
            if spawn || scope {
                self.emit(
                    out,
                    Lint::ThreadSpawnOutsidePar,
                    tok,
                    "ad-hoc threads bypass the pool's determinism and panic \
                     containment; fan out through `hetero_par::Pool::map` (or \
                     `Executor`) instead of spawning here"
                        .to_string(),
                );
            }
        }
    }

    /// Expression indexing (advisory).
    fn indexing(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.text != "[" || i == 0 {
                continue;
            }
            let prev = &self.tokens[i - 1];
            let indexable = match prev.kind {
                TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
                TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
                _ => false,
            };
            if indexable {
                self.emit(
                    out,
                    Lint::Indexing,
                    tok,
                    "slice indexing panics when out of bounds; prefer .get()/iterators \
                     where the index is not locally provable"
                        .into(),
                );
            }
        }
    }

    /// Library lib.rs must carry the policy headers.
    fn crate_policy(&self, src: &str, out: &mut Vec<Diagnostic>) {
        if !self.rel.ends_with("/src/lib.rs") {
            return;
        }
        let anchor = Token {
            kind: TokenKind::Punct,
            text: String::new(),
            line: 1,
            col: 1,
        };
        if !src.contains("#![forbid(unsafe_code)]") {
            self.emit(
                out,
                Lint::CratePolicy,
                &anchor,
                "library crate must declare `#![forbid(unsafe_code)]`".into(),
            );
        }
        if !src.contains("#![warn(missing_docs)]") && !src.contains("#![deny(missing_docs)]") {
            self.emit(
                out,
                Lint::CratePolicy,
                &anchor,
                "library crate must declare `#![warn(missing_docs)]`".into(),
            );
        }
    }

    /// Public items in the formula modules must cite the paper.
    fn paper_anchor(&self, src: &str, out: &mut Vec<Diagnostic>) {
        if !ANCHOR_FILES.contains(&self.rel) {
            return;
        }
        let lines: Vec<&str> = src.lines().collect();
        for (i, tok) in self.tokens.iter().enumerate() {
            if !self.live(i) || tok.kind != TokenKind::Ident || tok.text != "pub" {
                continue;
            }
            if self.text(i + 1) == "(" {
                continue; // pub(crate) etc. — not public API
            }
            let item = (1..=3).map(|d| self.text(i + d)).find(|t| {
                matches!(
                    *t,
                    "fn" | "struct" | "enum" | "const" | "type" | "static" | "trait"
                )
            });
            if item.is_none() {
                continue;
            }
            // Gather the contiguous doc block above the item.
            let mut doc = String::new();
            let mut l = tok.line as usize - 1; // index of the line above
            while l >= 1 {
                let t = lines.get(l - 1).map(|s| s.trim_start()).unwrap_or("");
                if t.starts_with("///") {
                    doc.push_str(t);
                    doc.push('\n');
                } else if !(t.starts_with("#[") || t.starts_with("//")) {
                    break;
                }
                l -= 1;
            }
            if !PAPER_ANCHORS.iter().any(|a| doc.contains(a)) {
                self.emit(
                    out,
                    Lint::PaperAnchor,
                    tok,
                    "public formula item must cite its source in the paper \
                     (Theorem/Proposition/Lemma/Corollary/Eq./§) in its doc comment"
                        .into(),
                );
            }
        }
    }

    /// `Profile { .. }` / `Params { .. }` literals outside their modules.
    fn constructor_discipline(&self, out: &mut Vec<Diagnostic>) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if tok.kind != TokenKind::Ident || !matches!(tok.text.as_str(), "Profile" | "Params") {
                continue;
            }
            let home = match tok.text.as_str() {
                "Profile" => "crates/core/src/profile.rs",
                _ => "crates/core/src/params.rs",
            };
            if self.rel == home || self.text(i + 1) != "{" {
                continue;
            }
            // `-> Params {` is a return type followed by the function
            // body, not a struct literal.
            if i > 0
                && matches!(
                    self.text(i - 1),
                    "struct" | "enum" | "union" | "impl" | "for" | "trait" | "mod" | "->"
                )
            {
                continue;
            }
            self.emit(
                out,
                Lint::ConstructorDiscipline,
                tok,
                format!(
                    "construct `{0}` through its validated constructors \
                     ({0}::new / from_unsorted), never a struct literal",
                    tok.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Lint;

    fn lints_of(rel: &str, src: &str) -> Vec<(Lint, u32)> {
        scan_file(rel, src)
            .diagnostics
            .iter()
            .map(|d| (d.lint, d.line))
            .collect()
    }

    const LIB: &str = "crates/core/src/demo.rs";

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/core/src/lib.rs"), FileClass::LibrarySrc);
        assert_eq!(classify("crates/cli/src/main.rs"), FileClass::BinSrc);
        assert_eq!(classify("crates/core/tests/props.rs"), FileClass::TestCode);
        assert_eq!(classify("crates/bench/benches/x.rs"), FileClass::BinSrc);
        assert_eq!(classify("shims/rand/src/lib.rs"), FileClass::Skip);
        assert_eq!(
            classify("crates/check/tests/fixtures/a/crates/x/src/lib.rs"),
            FileClass::Skip
        );
    }

    #[test]
    fn float_eq_fires_on_literals_only() {
        let found = lints_of(LIB, "fn f(x: f64) -> bool { x == 0.0 }");
        assert!(found.contains(&(Lint::FloatEq, 1)));
        let clean = lints_of(LIB, "fn f(x: usize) -> bool { x == 0 }");
        assert!(clean.iter().all(|(l, _)| *l != Lint::FloatEq));
    }

    #[test]
    fn partial_cmp_chain_detected_once() {
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let found = lints_of(LIB, src);
        assert!(found.contains(&(Lint::PartialCmpUnwrap, 1)));
        // The chained unwrap is reported by the specific lint, not both.
        assert!(found.iter().all(|(l, _)| *l != Lint::Unwrap));
    }

    #[test]
    fn naked_sum_scoped_to_kernels() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().sum() }";
        assert!(lints_of("crates/core/src/m.rs", src)
            .iter()
            .any(|(l, _)| *l == Lint::NakedSum));
        assert!(lints_of("crates/linalg/src/m.rs", src)
            .iter()
            .all(|(l, _)| *l != Lint::NakedSum));
        // Integer turbofish sums are fine.
        let int = "fn f(v: &[usize]) -> usize { v.iter().sum::<usize>() }";
        assert!(lints_of("crates/core/src/m.rs", int)
            .iter()
            .all(|(l, _)| *l != Lint::NakedSum));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) { x.unwrap(); }\n}";
        assert!(lints_of(LIB, src).is_empty());
        let live = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(lints_of(LIB, live).iter().any(|(l, _)| *l == Lint::Unwrap));
    }

    #[test]
    fn sim_time_unchecked_scoped_outside_the_simulator() {
        let src = "fn f() -> SimTime { SimTime::new(1.0) }";
        assert!(lints_of("crates/protocol/src/m.rs", src)
            .iter()
            .any(|(l, _)| *l == Lint::SimTimeUnchecked));
        // The simulator crate owns and validates the type.
        assert!(lints_of("crates/sim/src/m.rs", src)
            .iter()
            .all(|(l, _)| *l != Lint::SimTimeUnchecked));
        // Test code and the fallible API are exempt.
        let test = "#[cfg(test)]\nmod tests {\n fn f() -> SimTime { SimTime::new(1.0) }\n}";
        assert!(lints_of("crates/protocol/src/m.rs", test)
            .iter()
            .all(|(l, _)| *l != Lint::SimTimeUnchecked));
        let try_new = "fn f() -> Result<SimTime, NonFiniteTime> { SimTime::try_new(1.0) }";
        assert!(lints_of("crates/protocol/src/m.rs", try_new)
            .iter()
            .all(|(l, _)| *l != Lint::SimTimeUnchecked));
    }

    #[test]
    fn thread_spawn_scoped_outside_par() {
        let spawn = "pub fn f() { std::thread::spawn(|| {}); }";
        assert!(lints_of("crates/core/src/m.rs", spawn)
            .iter()
            .any(|(l, _)| *l == Lint::ThreadSpawnOutsidePar));
        let bare = "pub fn f() { thread::spawn(|| {}); }";
        assert!(lints_of("crates/core/src/m.rs", bare)
            .iter()
            .any(|(l, _)| *l == Lint::ThreadSpawnOutsidePar));
        let scope = "pub fn f() { crossbeam::scope(|s| {}).ok(); }";
        assert!(lints_of("crates/clustergen/src/m.rs", scope)
            .iter()
            .any(|(l, _)| *l == Lint::ThreadSpawnOutsidePar));
        let nested = "pub fn f() { crossbeam::thread::scope(|s| {}).ok(); }";
        assert!(lints_of("crates/clustergen/src/m.rs", nested)
            .iter()
            .any(|(l, _)| *l == Lint::ThreadSpawnOutsidePar));
        // The pool crate owns thread creation.
        assert!(lints_of("crates/par/src/pool.rs", spawn)
            .iter()
            .all(|(l, _)| *l != Lint::ThreadSpawnOutsidePar));
        // Non-spawning thread APIs stay legal everywhere.
        let probe = "pub fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }";
        assert!(lints_of("crates/core/src/m.rs", probe)
            .iter()
            .all(|(l, _)| *l != Lint::ThreadSpawnOutsidePar));
        // Test modules are exempt, as for every lint.
        let test = "#[cfg(test)]\nmod tests {\n fn f() { std::thread::spawn(|| {}); }\n}";
        assert!(lints_of("crates/core/src/m.rs", test)
            .iter()
            .all(|(l, _)| *l != Lint::ThreadSpawnOutsidePar));
    }

    #[test]
    fn print_in_lib_fires_on_macros_only() {
        let src = "pub fn f(x: f64) { println!(\"{x}\"); }";
        assert!(lints_of(LIB, src)
            .iter()
            .any(|(l, _)| *l == Lint::PrintInLib));
        let eprint = "pub fn f(x: f64) { eprintln!(\"{x}\"); }";
        assert!(lints_of(LIB, eprint)
            .iter()
            .any(|(l, _)| *l == Lint::PrintInLib));
        // A method named `print` is not the macro.
        let method = "pub fn f(d: &Doc) { d.print(); }";
        assert!(lints_of(LIB, method)
            .iter()
            .all(|(l, _)| *l != Lint::PrintInLib));
        // `writeln!` to a buffer is the sanctioned idiom.
        let writeln = "pub fn f(out: &mut String, x: f64) { let _ = writeln!(out, \"{x}\"); }";
        assert!(lints_of(LIB, writeln)
            .iter()
            .all(|(l, _)| *l != Lint::PrintInLib));
        // Binaries may print; that is their job.
        let bin = "fn main() { println!(\"hi\"); }";
        assert!(lints_of("crates/cli/src/main.rs", bin)
            .iter()
            .all(|(l, _)| *l != Lint::PrintInLib));
        // Test modules are exempt like every other lint.
        let test = "#[cfg(test)]\nmod tests {\n fn f() { println!(\"dbg\"); }\n}";
        assert!(lints_of(LIB, test).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_with_reason() {
        let src = "fn f(x: Option<u8>) {\n    // hetero-check: allow(unwrap) — checked above\n    x.unwrap();\n}";
        let scan = scan_file(LIB, src);
        assert!(scan.diagnostics.is_empty());
        assert_eq!(scan.suppressed.len(), 1);
        assert_eq!(scan.suppressed[0].reason, "checked above");
    }

    #[test]
    fn allow_comment_without_reason_is_flagged() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap(); // hetero-check: allow(unwrap)\n}";
        let found = lints_of(LIB, src);
        assert!(found.iter().any(|(l, _)| *l == Lint::AllowMissingReason));
        // And the unwrap still stands.
        assert!(found.iter().any(|(l, _)| *l == Lint::Unwrap));
    }

    #[test]
    fn constructor_discipline_outside_home_module() {
        let src = "fn f() { let p = Profile { rhos: vec![] }; }";
        assert!(lints_of("crates/sim/src/lib.rs", src)
            .iter()
            .any(|(l, _)| *l == Lint::ConstructorDiscipline));
        // The defining module itself is exempt.
        assert!(
            lints_of("crates/core/src/profile.rs", src)
                .iter()
                .all(|(l, _)| *l != Lint::ConstructorDiscipline),
            "home module may build its own struct"
        );
        // impl blocks are not literals.
        assert!(lints_of("crates/sim/src/lib.rs", "impl Profile { }")
            .iter()
            .all(|(l, _)| *l != Lint::ConstructorDiscipline));
    }

    #[test]
    fn paper_anchor_on_formula_modules() {
        let with = "/// Computes X (Theorem 1).\npub fn x() {}\n";
        let without = "/// Computes something.\npub fn x() {}\n";
        assert!(lints_of("crates/core/src/xmeasure.rs", with)
            .iter()
            .all(|(l, _)| *l != Lint::PaperAnchor));
        assert!(lints_of("crates/core/src/xmeasure.rs", without)
            .iter()
            .any(|(l, _)| *l == Lint::PaperAnchor));
        // Other files are not anchor-checked.
        assert!(lints_of("crates/core/src/profile.rs", without)
            .iter()
            .all(|(l, _)| *l != Lint::PaperAnchor));
    }

    #[test]
    fn crate_policy_checks_lib_headers() {
        let bad = "pub fn f() {}";
        let found = lints_of("crates/demo/src/lib.rs", bad);
        assert_eq!(
            found
                .iter()
                .filter(|(l, _)| *l == Lint::CratePolicy)
                .count(),
            2
        );
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}";
        assert!(lints_of("crates/demo/src/lib.rs", good)
            .iter()
            .all(|(l, _)| *l != Lint::CratePolicy));
    }

    #[test]
    fn indexing_is_advisory() {
        let src = "fn f(v: &[f64]) -> f64 { v[0] }";
        let scan = scan_file(LIB, src);
        let idx: Vec<_> = scan
            .diagnostics
            .iter()
            .filter(|d| d.lint == Lint::Indexing)
            .collect();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx[0].level, crate::diag::Level::Warn);
    }
}
