//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p hetero-check -- [--json] [--deny-warnings] \
//!     [--root DIR] [--write-baseline] [--prune-baseline] \
//!     [--explain LINT] [paths...]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or IO error.

use hetero_check::{
    baseline::Baseline, explain, load_baseline, render_json, render_text, run, Config,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: hetero-check [options] [paths...]

Static analysis for the hetero workspace: float hygiene, panic-freedom,
crate policy, paper anchors, and constructor discipline.

options:
  --json            emit machine-readable diagnostics on stdout
  --deny-warnings   advisory lints (indexing) also fail the run
  --root DIR        workspace root (default: nearest ancestor with
                    check-baseline.json or Cargo.toml)
  --write-baseline  grandfather all current violations into
                    check-baseline.json and exit 0
  --prune-baseline  rewrite check-baseline.json without entries that no
                    longer match any current violation, and exit 0
  --explain LINT    print the documentation page for one lint (what it
                    fires on, why it matters, how to fix it) and exit;
                    unknown lints exit 2 and list the catalogue
  --help            show this help

paths are root-relative files or directories; default is the whole
workspace (crates/, tests/, examples/).
";

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("check-baseline.json").is_file()
            || std::fs::read_to_string(dir.join("Cargo.toml"))
                .map(|s| s.contains("[workspace]"))
                .unwrap_or(false)
        {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut write_baseline = false;
    let mut prune_baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut paths = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--write-baseline" => write_baseline = true,
            "--prune-baseline" => prune_baseline = true,
            "--explain" => {
                let Some(lint) = args.next() else {
                    eprintln!("hetero-check: --explain needs a lint name\n{USAGE}");
                    return ExitCode::from(2);
                };
                return match explain::render(&lint) {
                    Some(page) => {
                        print!("{page}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprint!(
                            "hetero-check: unknown lint `{lint}`\n{}",
                            explain::catalog()
                        );
                        ExitCode::from(2)
                    }
                };
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("hetero-check: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("hetero-check: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let Some(root) = root.or_else(find_root) else {
        eprintln!("hetero-check: cannot locate the workspace root; pass --root");
        return ExitCode::from(2);
    };

    let config = Config {
        root,
        paths,
        deny_warnings,
    };
    let outcome = match run(&config) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("hetero-check: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let merged = {
            let mut b = match load_baseline(&config.root) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("hetero-check: {e}");
                    return ExitCode::from(2);
                }
            };
            let fresh = Baseline::from_diagnostics(outcome.new_deny.iter());
            b.entries.extend(fresh.entries);
            b
        };
        let path = config.root.join("check-baseline.json");
        if let Err(e) = std::fs::write(&path, merged.render()) {
            eprintln!("hetero-check: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "hetero-check: grandfathered {} violations into {}",
            outcome.new_deny.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if prune_baseline {
        let b = match load_baseline(&config.root) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("hetero-check: {e}");
                return ExitCode::from(2);
            }
        };
        if outcome.stale.is_empty() {
            println!(
                "hetero-check: no stale entries; check-baseline.json untouched ({} entries)",
                b.entries.len()
            );
            return ExitCode::SUCCESS;
        }
        let pruned = b.pruned(&outcome.stale);
        let path = config.root.join("check-baseline.json");
        if let Err(e) = std::fs::write(&path, pruned.render()) {
            eprintln!("hetero-check: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "hetero-check: pruned {} stale entries from {} ({} remain)",
            outcome.stale.len(),
            path.display(),
            pruned.entries.len()
        );
        return ExitCode::SUCCESS;
    }

    if json {
        print!("{}", render_json(&outcome, deny_warnings));
    } else {
        print!("{}", render_text(&outcome, deny_warnings));
    }
    ExitCode::from(outcome.exit_code(deny_warnings) as u8)
}
