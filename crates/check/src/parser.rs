//! A tolerant per-item parser over the [`crate::lexer`] token stream.
//!
//! The lexer-level lints see tokens; the dataflow lints need *structure*:
//! which tokens form a function, which statements its body contains, and
//! how those statements nest inside loops and branches. This module
//! recovers exactly that much syntax — function items (with visibility,
//! parameters, return type, and impl context) and a statement-level AST
//! of their bodies — without attempting full Rust expression parsing.
//! Expressions stay as token ranges; [`crate::cfg`] and
//! [`crate::dataflow`] inspect them with conservative token patterns.
//!
//! The parser is tolerant by construction: anything it does not
//! recognise is swallowed as an opaque expression statement, so a novel
//! construct can never panic the linter — it can only make the analysis
//! more conservative.

use crate::lexer::{Token, TokenKind};

/// A half-open range `[start, end)` of token indices.
pub type TokRange = (usize, usize);

/// One parsed function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding names introduced by the parameter pattern (a plain
    /// identifier yields one name; tuple/struct patterns yield several,
    /// all sharing the parameter's type).
    pub names: Vec<String>,
    /// The raw type text, space-joined.
    pub ty: String,
}

/// A parsed function item, from anywhere in the file (top level, impl
/// blocks, trait default methods, nested functions).
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The enclosing impl/trait self-type name, if any (`Pool` for
    /// `impl Pool { fn map … }`).
    pub qual: Option<String>,
    /// `pub` without a restriction (`pub(crate)` is not public API).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Raw return-type text (empty for `()`).
    pub ret: String,
    /// The body, if the item has one (trait declarations do not).
    pub body: Option<Block>,
    /// Token range of the body including braces, for mask lookups.
    pub body_range: TokRange,
}

/// A `{ … }` sequence of statements.
#[derive(Debug, Default)]
pub struct Block {
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement with its source anchor.
#[derive(Debug)]
pub struct Stmt {
    /// What kind of statement, with nested blocks where applicable.
    pub kind: StmtKind,
    /// 1-based line of the statement's first token.
    pub line: u32,
    /// 1-based column of the statement's first token.
    pub col: u32,
}

/// The statement-level syntax the dataflow passes understand.
#[derive(Debug)]
pub enum StmtKind {
    /// `let <pat>[: ty] [= init];`
    Let {
        /// Names bound by the pattern.
        names: Vec<String>,
        /// Token range of the type ascription, if present.
        ty: Option<TokRange>,
        /// Token range of the initialiser, if present.
        init: Option<TokRange>,
    },
    /// `<target> <op>= <value>;` where op is `=`, `+=`, `-=`, ….
    Assign {
        /// Token range of the assignment target (left of the operator).
        target: TokRange,
        /// The operator text (`=`, `+=`, …).
        op: String,
        /// Token range of the right-hand side.
        value: TokRange,
    },
    /// `for <pat> in <iter> { … }`
    For {
        /// Names bound by the loop pattern, in source order.
        names: Vec<String>,
        /// Token range of the iterated expression.
        iter: TokRange,
        /// The loop body.
        body: Block,
    },
    /// `while <cond> { … }` (including `while let`).
    While {
        /// Token range of the condition.
        cond: TokRange,
        /// The loop body.
        body: Block,
    },
    /// `loop { … }`
    Loop {
        /// The loop body.
        body: Block,
    },
    /// `if <cond> { … } [else …]` (including `if let`).
    If {
        /// Token range of the condition.
        cond: TokRange,
        /// The `then` branch.
        then: Block,
        /// The `else` branch (an `else if` chain nests here).
        els: Option<Block>,
    },
    /// `match <scrutinee> { arms… }`; each arm body is a block.
    Match {
        /// Token range of the scrutinee.
        scrutinee: TokRange,
        /// One block per arm (expression arms become single-statement
        /// blocks).
        arms: Vec<Block>,
    },
    /// A bare or `unsafe` block.
    Nested(Block),
    /// Any other expression statement, kept as its token range.
    Expr(TokRange),
}

/// Everything [`parse`] recovered from one file.
#[derive(Debug, Default)]
pub struct Ast {
    /// Every function item found, in source order.
    pub fns: Vec<FnItem>,
}

/// Keywords that introduce non-function items we skip over inside item
/// scans and bodies.
const ITEM_KEYWORDS: &[&str] = &[
    "struct",
    "enum",
    "union",
    "type",
    "use",
    "static",
    "const",
    "extern",
    "macro_rules",
];

struct Parser<'a> {
    toks: &'a [Token],
    fns: Vec<FnItem>,
}

/// Parses a token stream into its function items.
pub fn parse(tokens: &[Token]) -> Ast {
    let mut p = Parser {
        toks: tokens,
        fns: Vec::new(),
    };
    p.items(0, tokens.len(), None);
    Ast { fns: p.fns }
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    /// Skips a balanced delimiter group starting at `i` (which must point
    /// at an opening `(`/`[`/`{`); returns the index just past the close.
    fn skip_group(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Skips a balanced generic-argument group starting at `<`. Counts
    /// `<<`/`>>` as two and tolerates expressions by bailing out at `;`
    /// or an unbalanced close.
    fn skip_angles(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                ";" | "{" => return j,
                _ => {}
            }
            if depth <= 0 {
                return j + 1;
            }
            j += 1;
        }
        end
    }

    /// Collects the binding names of a pattern in `[start, end)`:
    /// identifiers that are not path segments (`Foo::`), constructor or
    /// struct names (`Some(`, `Point {`), macros, or binding modes.
    fn pat_names(&self, start: usize, end: usize) -> Vec<String> {
        let mut names = Vec::new();
        for k in start..end {
            let t = self.text(k);
            if !self.is_ident(k) || matches!(t, "mut" | "ref" | "box" | "_" | "self") {
                continue;
            }
            if matches!(self.text(k + 1), "(" | "{" | "::" | "!") {
                continue;
            }
            if k > start && self.text(k - 1) == "::" {
                continue;
            }
            names.push(t.to_string());
        }
        names
    }

    /// Finds the next token with `target` text at delimiter depth 0,
    /// starting from `i`, stopping before `end`.
    fn find_at_depth0(&self, i: usize, end: usize, targets: &[&str]) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            let t = self.text(j);
            // The target check runs before depth bookkeeping so that an
            // opening delimiter can itself be found at depth 0.
            if depth == 0 && targets.contains(&t) {
                return Some(j);
            }
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return None;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Scans items in `[i, end)` with the given impl/trait context,
    /// parsing every `fn` into [`FnItem`].
    fn items(&mut self, mut i: usize, end: usize, qual: Option<&str>) {
        let mut pending_pub = false;
        while i < end {
            let t = self.text(i);
            match t {
                "#" if self.text(i + 1) == "[" => {
                    // Attribute: skip the bracket group.
                    i = self.skip_group(i + 1, end);
                }
                "pub" => {
                    // `pub(crate)`/`pub(super)` are restricted, not public.
                    pending_pub = self.text(i + 1) != "(";
                    i += 1;
                    if self.text(i) == "(" {
                        i = self.skip_group(i, end);
                    }
                }
                "fn" if self.is_ident(i + 1) => {
                    i = self.function(i, end, qual, pending_pub);
                    pending_pub = false;
                }
                "impl" | "trait" => {
                    i = self.impl_or_trait(i, end, t == "trait");
                    pending_pub = false;
                }
                "mod" => {
                    // `mod name { … }` — recurse; `mod name;` — skip.
                    let mut j = i + 1;
                    while j < end && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                    if self.text(j) == "{" {
                        let close = self.skip_group(j, end);
                        self.items(j + 1, close.saturating_sub(1), qual);
                        i = close;
                    } else {
                        i = j + 1;
                    }
                    pending_pub = false;
                }
                kw if ITEM_KEYWORDS.contains(&kw) && self.is_ident(i) => {
                    // Skip the item: up to `;` or a balanced `{ … }`.
                    let mut j = i + 1;
                    let mut depth = 0i32;
                    while j < end {
                        match self.text(j) {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => {
                                j = self.skip_group(j, end);
                                break;
                            }
                            ";" if depth == 0 => {
                                j += 1;
                                break;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j;
                    pending_pub = false;
                }
                _ => {
                    i += 1;
                    pending_pub = false;
                }
            }
        }
    }

    /// Parses `impl … { items }` / `trait Name { items }`, recursing into
    /// the body with the recovered self-type name as qualifier.
    fn impl_or_trait(&mut self, i: usize, end: usize, is_trait: bool) -> usize {
        // Find the body `{` at depth 0, tracking the self-type name: the
        // last depth-0 identifier (after `for`, if one appears).
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut name: Option<String> = None;
        while j < end {
            match self.text(j) {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle = (angle - 1).max(0),
                ">>" => angle = (angle - 2).max(0),
                "{" if angle <= 0 => break,
                ";" => return j + 1, // `impl Trait for Type;`-like degenerate
                "for" if angle <= 0 => name = None,
                "where" if angle <= 0 => {
                    // Type name is settled; scan on for the `{`.
                }
                // Keep the first segment after `for`, else the first
                // overall — `Vec` of `Vec<Foo>`, `Bar` of `a::Bar`.
                // Later segments of a path overwrite.
                txt if angle <= 0
                    && self.is_ident(j)
                    && !matches!(txt, "dyn" | "mut" | "const" | "unsafe" | "for" | "where")
                    && (name.is_none() || self.text(j.wrapping_sub(1)) == "::") =>
                {
                    name = Some(txt.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        if self.text(j) != "{" {
            return j;
        }
        let close = self.skip_group(j, end);
        let qual = name.unwrap_or_default();
        let _ = is_trait;
        self.items(j + 1, close.saturating_sub(1), Some(&qual));
        close
    }

    /// Parses one `fn` item starting at the `fn` keyword; returns the
    /// index just past the item.
    fn function(&mut self, i: usize, end: usize, qual: Option<&str>, is_pub: bool) -> usize {
        let fn_tok = &self.toks[i];
        let name = self.text(i + 1).to_string();
        let mut j = i + 2;
        // Generic parameters.
        if self.text(j) == "<" {
            j = self.skip_angles(j, end);
        }
        // Parameters.
        let mut params = Vec::new();
        if self.text(j) == "(" {
            let close = self.skip_group(j, end);
            params = self.params(j + 1, close.saturating_sub(1));
            j = close;
        }
        // Return type: `-> …` until `{`, `;`, or `where`.
        let mut ret = String::new();
        if self.text(j) == "->" {
            j += 1;
            let mut depth = 0i32;
            while j < end {
                match self.text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" | ";" if depth == 0 => break,
                    "where" if depth == 0 => break,
                    _ => {}
                }
                if !ret.is_empty() {
                    ret.push(' ');
                }
                ret.push_str(self.text(j));
                j += 1;
            }
        }
        // Where clause: skip to the body `{` or `;`.
        while j < end && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        let (body, body_range, next) = if self.text(j) == "{" {
            let close = self.skip_group(j, end);
            let block = self.block(j + 1, close.saturating_sub(1));
            (Some(block), (j, close), close)
        } else {
            (None, (j, j), j + 1)
        };
        self.fns.push(FnItem {
            name,
            qual: qual.map(str::to_string),
            is_pub,
            line: fn_tok.line,
            col: fn_tok.col,
            params,
            ret,
            body,
            body_range,
        });
        next
    }

    /// Finds the next comma separating two parameters: at depth 0 of
    /// `()`/`[]`/`{}` *and* outside `<...>` generics, so the comma in
    /// `&HashMap<String, f64>` does not split the type in half. `>>`
    /// lexes as one shift token in nested generics and closes two.
    fn param_comma(&self, start: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut angles = 0i32;
        let mut i = start;
        while i < end {
            match self.text(i) {
                "," if depth == 0 && angles <= 0 => return i,
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" if depth == 0 => angles += 1,
                ">" if depth == 0 => angles -= 1,
                ">>" if depth == 0 => angles -= 2,
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Parses a parameter list between (exclusive) paren indices.
    fn params(&self, start: usize, end: usize) -> Vec<Param> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            // One parameter: up to a comma outside brackets and generics.
            let comma = self.param_comma(i, end);
            let colon = self.find_at_depth0(i, comma, &[":"]);
            let pat_end = colon.unwrap_or(comma);
            let names = self.pat_names(i, pat_end);
            let receiver = (i..pat_end).any(|k| self.text(k) == "self");
            if let Some(c) = colon {
                if !receiver {
                    let mut ty = String::new();
                    for k in c + 1..comma {
                        if !ty.is_empty() {
                            ty.push(' ');
                        }
                        ty.push_str(self.text(k));
                    }
                    out.push(Param { names, ty });
                }
            }
            i = comma + 1;
        }
        out
    }

    /// Parses the statements between (exclusive) brace indices.
    fn block(&mut self, start: usize, end: usize) -> Block {
        let mut stmts = Vec::new();
        let mut i = start;
        while i < end {
            let (line, col) = self.toks.get(i).map(|t| (t.line, t.col)).unwrap_or((0, 0));
            let anchor = |kind: StmtKind| Stmt { kind, line, col };
            match self.text(i) {
                ";" => {
                    i += 1;
                }
                "#" if self.text(i + 1) == "[" => {
                    i = self.skip_group(i + 1, end);
                }
                "let" => {
                    let (stmt, next) = self.let_stmt(i, end);
                    stmts.push(anchor(stmt));
                    i = next;
                }
                "for" => {
                    let in_kw = self.find_at_depth0(i + 1, end, &["in"]).unwrap_or(i + 1);
                    let names = self.pat_names(i + 1, in_kw);
                    let open = self.find_at_depth0(in_kw + 1, end, &["{"]).unwrap_or(end);
                    let close = self.skip_group(open, end);
                    let body = self.block(open + 1, close.saturating_sub(1));
                    stmts.push(anchor(StmtKind::For {
                        names,
                        iter: (in_kw + 1, open),
                        body,
                    }));
                    i = close;
                }
                "while" => {
                    let open = self.find_at_depth0(i + 1, end, &["{"]).unwrap_or(end);
                    let close = self.skip_group(open, end);
                    let body = self.block(open + 1, close.saturating_sub(1));
                    stmts.push(anchor(StmtKind::While {
                        cond: (i + 1, open),
                        body,
                    }));
                    i = close;
                }
                "loop" => {
                    let open = self.find_at_depth0(i + 1, end, &["{"]).unwrap_or(end);
                    let close = self.skip_group(open, end);
                    let body = self.block(open + 1, close.saturating_sub(1));
                    stmts.push(anchor(StmtKind::Loop { body }));
                    i = close;
                }
                "if" => {
                    let (stmt, next) = self.if_stmt(i, end);
                    stmts.push(anchor(stmt));
                    i = next;
                }
                "match" => {
                    let open = self.find_at_depth0(i + 1, end, &["{"]).unwrap_or(end);
                    let close = self.skip_group(open, end);
                    let arms = self.match_arms(open + 1, close.saturating_sub(1));
                    stmts.push(anchor(StmtKind::Match {
                        scrutinee: (i + 1, open),
                        arms,
                    }));
                    i = close;
                }
                "unsafe" if self.text(i + 1) == "{" => {
                    let close = self.skip_group(i + 1, end);
                    let inner = self.block(i + 2, close.saturating_sub(1));
                    stmts.push(anchor(StmtKind::Nested(inner)));
                    i = close;
                }
                "{" => {
                    let close = self.skip_group(i, end);
                    let inner = self.block(i + 1, close.saturating_sub(1));
                    stmts.push(anchor(StmtKind::Nested(inner)));
                    i = close;
                }
                "fn" if self.is_ident(i + 1) => {
                    // Nested function item.
                    i = self.function(i, end, None, false);
                }
                "pub" | "impl" | "mod" | "trait" | "struct" | "enum" | "use" | "const"
                | "static" | "type"
                    if self.is_ident(i) =>
                {
                    // Nested item: delegate to the item scanner for just
                    // this item by finding its extent.
                    let from = i;
                    let mut j = i;
                    let mut depth = 0i32;
                    while j < end {
                        match self.text(j) {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => {
                                j = self.skip_group(j, end);
                                break;
                            }
                            ";" if depth == 0 => {
                                j += 1;
                                break;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    self.items(from, j, None);
                    i = j;
                }
                _ => {
                    let (stmt, next) = self.expr_stmt(i, end);
                    stmts.push(anchor(stmt));
                    i = next;
                }
            }
        }
        Block { stmts }
    }

    /// Parses `let <pat>[: ty] [= init] [else { … }];`.
    fn let_stmt(&mut self, i: usize, end: usize) -> (StmtKind, usize) {
        let semi = self.stmt_end(i, end);
        // Pattern: up to `:` or `=` at depth 0.
        let stop = self
            .find_at_depth0(i + 1, semi, &[":", "="])
            .unwrap_or(semi);
        let names = self.pat_names(i + 1, stop);
        let mut ty = None;
        let mut eq = None;
        if self.text(stop) == ":" {
            let eq_at = self.find_at_depth0(stop + 1, semi, &["="]);
            ty = Some((stop + 1, eq_at.unwrap_or(semi)));
            eq = eq_at;
        } else if self.text(stop) == "=" {
            eq = Some(stop);
        }
        let init = eq.map(|e| (e + 1, semi));
        (StmtKind::Let { names, ty, init }, semi + 1)
    }

    /// Parses `if <cond> { … } [else if … | else { … }]`.
    fn if_stmt(&mut self, i: usize, end: usize) -> (StmtKind, usize) {
        let open = self.find_at_depth0(i + 1, end, &["{"]).unwrap_or(end);
        let close = self.skip_group(open, end);
        let then = self.block(open + 1, close.saturating_sub(1));
        let cond = (i + 1, open);
        if self.text(close) == "else" {
            if self.text(close + 1) == "if" {
                let (nested, next) = self.if_stmt(close + 1, end);
                let (line, col) = self
                    .toks
                    .get(close + 1)
                    .map(|t| (t.line, t.col))
                    .unwrap_or((0, 0));
                let els = Block {
                    stmts: vec![Stmt {
                        kind: nested,
                        line,
                        col,
                    }],
                };
                return (
                    StmtKind::If {
                        cond,
                        then,
                        els: Some(els),
                    },
                    next,
                );
            }
            if self.text(close + 1) == "{" {
                let eclose = self.skip_group(close + 1, end);
                let els = self.block(close + 2, eclose.saturating_sub(1));
                return (
                    StmtKind::If {
                        cond,
                        then,
                        els: Some(els),
                    },
                    eclose,
                );
            }
        }
        (
            StmtKind::If {
                cond,
                then,
                els: None,
            },
            close,
        )
    }

    /// Parses match arms between (exclusive) brace indices into blocks.
    fn match_arms(&mut self, start: usize, end: usize) -> Vec<Block> {
        let mut arms = Vec::new();
        let mut i = start;
        while i < end {
            let Some(arrow) = self.find_at_depth0(i, end, &["=>"]) else {
                break;
            };
            if self.text(arrow + 1) == "{" {
                let close = self.skip_group(arrow + 1, end);
                arms.push(self.block(arrow + 2, close.saturating_sub(1)));
                i = close;
                if self.text(i) == "," {
                    i += 1;
                }
            } else {
                let stop = self.find_at_depth0(arrow + 1, end, &[","]).unwrap_or(end);
                let (line, col) = self
                    .toks
                    .get(arrow + 1)
                    .map(|t| (t.line, t.col))
                    .unwrap_or((0, 0));
                arms.push(Block {
                    stmts: vec![Stmt {
                        kind: StmtKind::Expr((arrow + 1, stop)),
                        line,
                        col,
                    }],
                });
                i = stop + 1;
            }
        }
        arms
    }

    /// Finds the end of an expression statement: the `;` at depth 0, or
    /// `end` for a trailing expression.
    fn stmt_end(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Parses an expression statement, recognising depth-0 assignments.
    fn expr_stmt(&mut self, i: usize, end: usize) -> (StmtKind, usize) {
        let semi = self.stmt_end(i, end);
        const ASSIGN_OPS: &[&str] = &[
            "=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>=",
        ];
        if let Some(op_at) = self.find_at_depth0(i, semi, ASSIGN_OPS) {
            // `a == b` lexes as one token, so a bare `=` here really is
            // an assignment. `|x| y = z` closures sit inside parens at
            // depth > 0 in practice.
            let op = self.text(op_at).to_string();
            let kind = StmtKind::Assign {
                target: (i, op_at),
                op,
                value: (op_at + 1, semi),
            };
            return (kind, semi + 1);
        }
        (StmtKind::Expr((i, semi)), semi + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src).tokens)
    }

    #[test]
    fn finds_functions_with_visibility_and_qual() {
        let ast = parse_src(
            "pub fn a() {}\nfn b() {}\npub(crate) fn c() {}\nimpl Pool { pub fn map(&self) {} }",
        );
        let names: Vec<(&str, bool, Option<&str>)> = ast
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub, f.qual.as_deref()))
            .collect();
        assert!(names.contains(&("a", true, None)));
        assert!(names.contains(&("b", false, None)));
        assert!(names.contains(&("c", false, None)));
        assert!(names.contains(&("map", true, Some("Pool"))));
    }

    #[test]
    fn impl_for_takes_the_self_type() {
        let ast = parse_src("impl<T> Display for Wrapper<T> { fn fmt(&self) {} }");
        assert_eq!(ast.fns[0].qual.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn params_carry_names_and_types() {
        let ast = parse_src("fn f(x: f64, ys: &[f64], (a, b): (u32, u32)) {}");
        let f = &ast.fns[0];
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].names, vec!["x"]);
        assert_eq!(f.params[0].ty, "f64");
        assert_eq!(f.params[1].ty, "& [ f64 ]");
        assert_eq!(f.params[2].names, vec!["a", "b"]);
    }

    #[test]
    fn generic_param_types_are_not_split_at_inner_commas() {
        let ast =
            parse_src("fn f(m: &HashMap<String, f64>, n: BTreeMap<u64, Vec<Vec<f64>>>, k: u32) {}");
        let f = &ast.fns[0];
        assert_eq!(f.params.len(), 3, "{:?}", f.params);
        assert_eq!(f.params[0].names, vec!["m"]);
        assert!(f.params[0].ty.contains("HashMap") && f.params[0].ty.contains("f64"));
        // `>>` lexes as one shift token and must close two angle levels.
        assert_eq!(f.params[1].names, vec!["n"]);
        assert!(f.params[1].ty.contains("Vec") && f.params[1].ty.contains("f64"));
        assert_eq!(f.params[2].names, vec!["k"]);
        assert_eq!(f.params[2].ty, "u32");
    }

    #[test]
    fn body_statements_nest() {
        let ast = parse_src(
            "fn f(xs: &[f64]) -> f64 {\n let mut s = 0.0;\n for x in xs { s += x; }\n s\n}",
        );
        let body = ast.fns[0].body.as_ref().expect("has body");
        assert_eq!(body.stmts.len(), 3);
        assert!(matches!(body.stmts[0].kind, StmtKind::Let { .. }));
        match &body.stmts[1].kind {
            StmtKind::For { names, body, .. } => {
                assert_eq!(names, &vec!["x".to_string()]);
                assert!(
                    matches!(body.stmts[0].kind, StmtKind::Assign { ref op, .. } if op == "+=")
                );
            }
            other => panic!("expected For, got {other:?}"),
        }
    }

    #[test]
    fn if_else_chains_and_match_arms() {
        let ast = parse_src(
            "fn f(x: u32) -> u32 {\n if x > 1 { 1 } else if x > 0 { 2 } else { 3 };\n match x { 0 => 0, _ => { 9 } }\n}",
        );
        let body = ast.fns[0].body.as_ref().expect("has body");
        assert!(matches!(
            body.stmts[0].kind,
            StmtKind::If { els: Some(_), .. }
        ));
        match &body.stmts[1].kind {
            StmtKind::Match { arms, .. } => assert_eq!(arms.len(), 2),
            other => panic!("expected Match, got {other:?}"),
        }
    }

    #[test]
    fn tolerates_weird_input_without_panicking() {
        for src in [
            "fn",
            "fn f(",
            "impl {",
            "fn f() { let = ; }",
            "fn f() { match x { } }",
            "fn f() { if }",
            "}}}{{{",
        ] {
            let _ = parse_src(src);
        }
    }

    #[test]
    fn trait_methods_without_bodies_are_recorded() {
        let ast = parse_src("trait T { fn required(&self) -> f64; fn provided(&self) {} }");
        assert_eq!(ast.fns.len(), 2);
        assert!(ast
            .fns
            .iter()
            .any(|f| f.name == "required" && f.body.is_none()));
        assert!(ast
            .fns
            .iter()
            .any(|f| f.name == "provided" && f.body.is_some()));
    }
}
