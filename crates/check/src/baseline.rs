//! The checked-in violation baseline (`check-baseline.json`).
//!
//! The baseline is a burn-down ledger: known violations listed there are
//! reported but do not fail the run, so the checker can be adopted before
//! every finding is fixed. The goal state — and the state this repo keeps
//! — is an empty baseline.

use crate::diag::{Diagnostic, Lint};
use crate::json::{self, Value};
use std::collections::BTreeMap;

/// One grandfathered violation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Entry {
    /// Stable lint ID.
    pub lint: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line the violation was recorded at.
    pub line: u32,
}

/// The parsed baseline.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// All grandfathered violations.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parses the baseline JSON document.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let value = json::parse(src)?;
        let version = value
            .get("version")
            .and_then(Value::as_num)
            .ok_or("baseline missing numeric `version`")? as i64;
        if version != 1 {
            return Err(format!("unsupported baseline version {version}"));
        }
        let mut entries = Vec::new();
        for item in value
            .get("entries")
            .and_then(Value::as_arr)
            .ok_or("baseline missing `entries` array")?
        {
            let lint = item
                .get("lint")
                .and_then(Value::as_str)
                .ok_or("baseline entry missing `lint`")?;
            if Lint::from_name(lint).is_none() {
                return Err(format!("baseline entry has unknown lint `{lint}`"));
            }
            let file = item
                .get("file")
                .and_then(Value::as_str)
                .ok_or("baseline entry missing `file`")?;
            let line = item
                .get("line")
                .and_then(Value::as_num)
                .ok_or("baseline entry missing `line`")?;
            entries.push(Entry {
                lint: lint.to_string(),
                file: file.to_string(),
                line: line as u32,
            });
        }
        Ok(Baseline { entries })
    }

    /// Serializes the baseline (sorted, deterministic).
    pub fn render(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort();
        entries.dedup();
        let items: Vec<Value> = entries
            .into_iter()
            .map(|e| {
                let mut obj = BTreeMap::new();
                obj.insert("lint".to_string(), Value::Str(e.lint));
                obj.insert("file".to_string(), Value::Str(e.file));
                obj.insert("line".to_string(), Value::Num(f64::from(e.line)));
                Value::Obj(obj)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("version".to_string(), Value::Num(1.0));
        root.insert("entries".to_string(), Value::Arr(items));
        let mut out = json::render(&Value::Obj(root));
        out.push('\n');
        out
    }

    /// Builds a baseline grandfathering the given diagnostics.
    pub fn from_diagnostics<'a>(diags: impl Iterator<Item = &'a Diagnostic>) -> Baseline {
        Baseline {
            entries: diags
                .map(|d| Entry {
                    lint: d.lint.name().to_string(),
                    file: d.file.clone(),
                    line: d.line,
                })
                .collect(),
        }
    }

    /// Whether a diagnostic is grandfathered.
    pub fn covers(&self, diag: &Diagnostic) -> bool {
        self.entries
            .iter()
            .any(|e| e.lint == diag.lint.name() && e.file == diag.file && e.line == diag.line)
    }

    /// Entries that no longer match any current diagnostic (fixed or
    /// moved): these should be pruned from the checked-in file.
    pub fn stale<'a>(&self, diags: impl Iterator<Item = &'a Diagnostic> + Clone) -> Vec<Entry> {
        self.entries
            .iter()
            .filter(|e| {
                !diags
                    .clone()
                    .any(|d| d.lint.name() == e.lint && d.file == e.file && d.line == e.line)
            })
            .cloned()
            .collect()
    }

    /// A copy of this baseline with the given stale entries dropped
    /// (`--prune-baseline`). Entries are matched exactly; pruning never
    /// invents entries, so `pruned` followed by [`render`](Self::render)
    /// and [`parse`](Self::parse) round-trips to the surviving set.
    pub fn pruned(&self, stale: &[Entry]) -> Baseline {
        Baseline {
            entries: self
                .entries
                .iter()
                .filter(|e| !stale.contains(e))
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Level, Lint};

    fn diag(lint: Lint, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            lint,
            level: Level::Deny,
            file: file.to_string(),
            line,
            col: 1,
            message: String::new(),
        }
    }

    #[test]
    fn parse_render_roundtrip() {
        let b = Baseline {
            entries: vec![Entry {
                lint: "unwrap".into(),
                file: "crates/core/src/profile.rs".into(),
                line: 58,
            }],
        };
        let text = b.render();
        let back = Baseline::parse(&text).expect("roundtrips");
        assert_eq!(back.entries, b.entries);
    }

    #[test]
    fn covers_and_stale() {
        let d1 = diag(Lint::Unwrap, "a.rs", 3);
        let d2 = diag(Lint::Expect, "b.rs", 9);
        let b = Baseline::from_diagnostics([&d1].into_iter());
        assert!(b.covers(&d1));
        assert!(!b.covers(&d2));
        let stale = b.stale([&d2].into_iter());
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].lint, "unwrap");
    }

    #[test]
    fn prune_roundtrips_through_render_and_parse() {
        let keep = diag(Lint::Unwrap, "a.rs", 3);
        let fixed = diag(Lint::Expect, "b.rs", 9);
        let b = Baseline::from_diagnostics([&keep, &fixed].into_iter());
        assert_eq!(b.entries.len(), 2);

        // `fixed` no longer fires; only `keep` is still current.
        let stale = b.stale([&keep].into_iter());
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "b.rs");

        let pruned = b.pruned(&stale);
        let back = Baseline::parse(&pruned.render()).expect("pruned baseline parses");
        assert_eq!(back.entries, pruned.entries);
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].file, "a.rs");
        assert!(back.stale([&keep].into_iter()).is_empty());

        // Pruning with nothing stale is the identity.
        let same = b.pruned(&[]);
        assert_eq!(same.entries, b.entries);
    }

    #[test]
    fn rejects_unknown_lints() {
        let src = r#"{"version": 1, "entries": [{"lint": "no-such", "file": "a.rs", "line": 1}]}"#;
        assert!(Baseline::parse(src).is_err());
    }

    #[test]
    fn empty_baseline_parses() {
        let b = Baseline::parse("{\"version\": 1, \"entries\": []}\n").expect("parses");
        assert!(b.entries.is_empty());
    }
}
