//! A small Rust lexer: just enough token structure for the lint passes.
//!
//! The lexer understands strings (including raw and byte strings), char
//! literals vs. lifetimes, nested block comments, numeric literals with
//! float/integer distinction, identifiers, and multi-character operators.
//! It does not build a syntax tree; the lint passes work on the token
//! stream plus recorded comments.

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including hex/octal/binary).
    Int,
    /// Floating-point literal (`1.0`, `1e-7`, `2f64`).
    Float,
    /// String, byte-string, or raw-string literal.
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Operator or delimiter (multi-char operators are one token).
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// The raw text of the token.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A `//` comment and the line it appears on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based source line.
    pub line: u32,
    /// Comment text including the leading `//`.
    pub text: String,
}

/// Token stream plus side tables produced by [`lex`].
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All line comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes Rust source. Unterminated literals are tolerated (the rest
/// of the file is consumed as that literal) so the linter never panics on
/// odd input.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment { line, text });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        if c == '"' {
            out.tokens.push(lex_string(&mut cur, line, col));
            continue;
        }
        if c == '\'' {
            out.tokens.push(lex_char_or_lifetime(&mut cur, line, col));
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            // `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`: the "ident" is
            // actually a literal prefix — but only when the hashes (if
            // any) lead to an opening quote. `r#type` is a raw
            // *identifier* and must not start a string.
            if matches!(text.as_str(), "r" | "b" | "br") {
                let mut ahead = 0;
                while cur.peek(ahead) == Some('#') {
                    ahead += 1;
                }
                if cur.peek(ahead) == Some('"') {
                    let tok = if text == "b" && ahead == 0 {
                        lex_string(&mut cur, line, col)
                    } else {
                        lex_raw_string(&mut cur, line, col)
                    };
                    out.tokens.push(Token {
                        text: format!("{}{}", text, tok.text),
                        ..tok
                    });
                    continue;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        if c.is_ascii_digit() {
            out.tokens.push(lex_number(&mut cur, line, col));
            continue;
        }
        // Operators: longest multi-char match first.
        let mut matched = None;
        for op in MULTI_PUNCT {
            let len = op.chars().count();
            if (0..len).all(|i| cur.peek(i) == op.chars().nth(i)) {
                matched = Some(*op);
                break;
            }
        }
        if let Some(op) = matched {
            for _ in 0..op.chars().count() {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: op.to_string(),
                line,
                col,
            });
            continue;
        }
        cur.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

fn lex_string(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('"'));
    while let Some(ch) = cur.peek(0) {
        cur.bump();
        text.push(ch);
        if ch == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        if ch == '"' {
            break;
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

fn lex_raw_string(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek(0) == Some('"') {
        text.push('"');
        cur.bump();
        'body: while let Some(ch) = cur.bump() {
            text.push(ch);
            if ch == '"' {
                let mut seen = 0usize;
                while seen < hashes {
                    if cur.peek(0) == Some('#') {
                        text.push('#');
                        cur.bump();
                        seen += 1;
                    } else {
                        continue 'body;
                    }
                }
                break;
            }
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

fn lex_char_or_lifetime(cur: &mut Cursor, line: u32, col: u32) -> Token {
    // Lifetime when `'` is followed by an identifier that is NOT closed
    // by another `'` (e.g. `'a` in `&'a str` vs the char `'a'`).
    let second = cur.peek(1);
    let is_lifetime = match second {
        Some(c) if is_ident_start(c) => {
            let mut i = 2;
            while cur.peek(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            cur.peek(i) != Some('\'')
        }
        _ => false,
    };
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('\''));
    if is_lifetime {
        while cur.peek(0).is_some_and(is_ident_continue) {
            if let Some(ch) = cur.bump() {
                text.push(ch);
            }
        }
        return Token {
            kind: TokenKind::Lifetime,
            text,
            line,
            col,
        };
    }
    while let Some(ch) = cur.bump() {
        text.push(ch);
        if ch == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        if ch == '\'' {
            break;
        }
    }
    Token {
        kind: TokenKind::Char,
        text,
        line,
        col,
    }
}

fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    let mut float = false;
    let radix_prefix = cur.peek(0) == Some('0')
        && matches!(cur.peek(1), Some('x') | Some('X') | Some('o') | Some('b'));
    if radix_prefix {
        for _ in 0..2 {
            if let Some(ch) = cur.bump() {
                text.push(ch);
            }
        }
        while cur
            .peek(0)
            .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
        {
            if let Some(ch) = cur.bump() {
                text.push(ch);
            }
        }
    } else {
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            if let Some(ch) = cur.bump() {
                text.push(ch);
            }
        }
        // Fraction: a dot followed by a digit (so `0..24` stays integral).
        if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            if let Some(ch) = cur.bump() {
                text.push(ch);
            }
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                if let Some(ch) = cur.bump() {
                    text.push(ch);
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(0), Some('e') | Some('E')) {
            let sign = matches!(cur.peek(1), Some('+') | Some('-'));
            let digit_at = if sign { 2 } else { 1 };
            if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                for _ in 0..=usize::from(sign) {
                    if let Some(ch) = cur.bump() {
                        text.push(ch);
                    }
                }
                while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    if let Some(ch) = cur.bump() {
                        text.push(ch);
                    }
                }
            }
        }
    }
    // Type suffix (`f64`, `u32`, ...).
    let mut suffix = String::new();
    while cur.peek(0).is_some_and(is_ident_continue) {
        if let Some(ch) = cur.bump() {
            suffix.push(ch);
        }
    }
    if suffix.starts_with('f') {
        float = true;
    }
    text.push_str(&suffix);
    Token {
        kind: if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let toks = kinds("0.01f64..=1.0 0..24 1e-7 0x1E 2f64");
        assert_eq!(toks[0], (TokenKind::Float, "0.01f64".into()));
        assert_eq!(toks[1], (TokenKind::Punct, "..=".into()));
        assert_eq!(toks[2], (TokenKind::Float, "1.0".into()));
        assert_eq!(toks[3], (TokenKind::Int, "0".into()));
        assert_eq!(toks[4], (TokenKind::Punct, "..".into()));
        assert_eq!(toks[5], (TokenKind::Int, "24".into()));
        assert_eq!(toks[6], (TokenKind::Float, "1e-7".into()));
        assert_eq!(toks[7], (TokenKind::Int, "0x1E".into()));
        assert_eq!(toks[8], (TokenKind::Float, "2f64".into()));
    }

    #[test]
    fn strings_comments_and_lifetimes() {
        let lexed = lex("let s: &'a str = \"a // not a comment\"; // real comment\n'x'");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text.contains("not a comment")));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "'x'"));
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text, "// real comment");
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let lexed = lex(r####"let s = r#"has "quotes" inside"#; next"####);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text.contains("quotes")));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "next"));
    }

    #[test]
    fn multichar_operators_are_single_tokens() {
        let toks = kinds("a == b != c :: d -> e => f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "->", "=>"]);
    }

    #[test]
    fn positions_are_one_based_lines() {
        let lexed = lex("a\nbb\n  ccc");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[2].line, 3);
        assert_eq!(lexed.tokens[2].col, 3);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("before /* outer /* inner */ still */ after");
        let idents: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, vec!["before", "after"]);
    }

    #[test]
    fn raw_strings_hide_comment_markers_and_track_lines() {
        let src = "let a = r#\"x // not \"a\" comment\"#;\nlet b = 1; // real";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1, "only the trailing comment counts");
        assert_eq!(lexed.comments[0].text, "// real");
        assert_eq!(lexed.comments[0].line, 2);
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("raw string token");
        assert!(s.text.contains("not \"a\" comment"));
        let b = lexed.tokens.iter().find(|t| t.text == "b").expect("b");
        assert_eq!(b.line, 2, "line tracking resumes after the raw string");
    }

    #[test]
    fn multiline_raw_strings_keep_line_numbers() {
        let src = "r##\"first\n// second\n\"# third\"## after";
        let lexed = lex(src);
        assert!(
            lexed.comments.is_empty(),
            "`//` inside the literal is content"
        );
        assert_eq!(lexed.tokens.len(), 2);
        assert_eq!(lexed.tokens[0].kind, TokenKind::Str);
        assert!(lexed.tokens[0].text.contains("\"# third"));
        assert_eq!(lexed.tokens[1].text, "after");
        assert_eq!(lexed.tokens[1].line, 3);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let toks = kinds("let r#type = r#\"s\"#;");
        let strs = toks.iter().filter(|(k, _)| *k == TokenKind::Str).count();
        assert_eq!(strs, 1, "`r#type` must not lex as a string");
        assert!(toks.contains(&(TokenKind::Ident, "type".into())));
    }

    #[test]
    fn unterminated_raw_string_is_tolerated() {
        let lexed = lex("r#\"never closed");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].kind, TokenKind::Str);
        assert!(lexed.comments.is_empty());
    }

    /// One draw of lexable source text for the fuzz tests: fragments are
    /// joined with spaces, so every fragment must be self-delimiting.
    fn fragment() -> impl proptest::strategy::Strategy<Value = String> {
        use proptest::prelude::*;
        prop_oneof![
            Just("ident".to_string()),
            Just("x1".to_string()),
            Just("42".to_string()),
            Just("0x1f".to_string()),
            Just("1.5e-3".to_string()),
            Just("2f64".to_string()),
            Just("'c'".to_string()),
            Just("&'a".to_string()),
            Just("\"str with // inside\"".to_string()),
            Just("r\"plain raw\"".to_string()),
            Just("r#\"raw \"quoted\" // body\"#".to_string()),
            Just("br#\"bytes \" here\"#".to_string()),
            Just("r#match".to_string()),
            Just("// line comment".to_string()),
            Just("/* block /* nested */ done */".to_string()),
            Just("==".to_string()),
            Just("..=".to_string()),
            Just("{ }".to_string()),
            Just("\n".to_string()),
        ]
    }

    proptest::proptest! {
        /// Token soup: whatever the mix, the lexer must terminate, keep
        /// token lines monotone, and never place anything past the last
        /// source line.
        #[test]
        fn fuzz_token_soup_lines_stay_monotone(
            frags in proptest::collection::vec(fragment(), 0..30usize),
        ) {
            let src = frags.join(" ");
            let lexed = lex(&src);
            let max_line = src.matches('\n').count() as u32 + 1;
            let mut last = 1u32;
            for t in &lexed.tokens {
                proptest::prop_assert!(t.line >= last, "line order: {} < {last}", t.line);
                proptest::prop_assert!(t.line <= max_line);
                proptest::prop_assert!(t.col >= 1);
                proptest::prop_assert!(!t.text.is_empty());
                last = t.line;
            }
            for c in &lexed.comments {
                proptest::prop_assert!(c.line >= 1 && c.line <= max_line);
            }
        }

        /// Raw strings built from hostile pieces (`//`, `"`, `#`,
        /// newlines) must swallow their body whole: no comment leaks out
        /// of the literal, and the line counter stays exact.
        #[test]
        fn fuzz_raw_string_bodies_never_leak_comments(
            pieces in proptest::collection::vec(
                {
                    use proptest::prelude::*;
                    prop_oneof![
                        Just("txt"),
                        Just("//"),
                        Just("\""),
                        Just("#"),
                        Just(" "),
                        Just("\n"),
                        Just("'"),
                    ]
                },
                0..12usize,
            ),
            extra_hashes in 0usize..2,
        ) {
            let body: String = pieces.concat();
            // The delimiter must out-run every `"` + `#…` sequence the
            // body contains, or the literal would close early.
            let chars: Vec<char> = body.chars().collect();
            let mut needed = 1usize;
            for (i, &c) in chars.iter().enumerate() {
                if c == '"' {
                    let run = chars[i + 1..].iter().take_while(|&&h| h == '#').count();
                    needed = needed.max(run + 1);
                }
            }
            let h = "#".repeat(needed + extra_hashes);
            let src = format!("let s = r{h}\"{body}\"{h};\n// tail");
            let lexed = lex(&src);
            proptest::prop_assert_eq!(lexed.comments.len(), 1);
            proptest::prop_assert_eq!(lexed.comments[0].text.as_str(), "// tail");
            proptest::prop_assert_eq!(
                lexed.comments[0].line as usize,
                body.matches('\n').count() + 2
            );
            let s = lexed.tokens.iter().find(|t| t.kind == TokenKind::Str);
            proptest::prop_assert!(s.is_some(), "the raw string must lex as one token");
        }
    }
}
