//! Control-flow-graph lowering for parsed function bodies.
//!
//! [`lower`] turns a [`crate::parser::Block`] into basic blocks of
//! [`Step`]s connected by successor edges. Branches (`if`/`match`) fork
//! and re-join; loops (`for`/`while`/`loop`) get a header block with a
//! back edge from the body, and body blocks record their loop depth so
//! the accumulation lints know which statements repeat.
//!
//! The graph is deliberately small-scale: straight-line statements stay
//! leaf [`Step::Stmt`]s, loop headers carry their binding/iterator
//! ranges, and `break`/`continue`/`return`/`?` are approximated by the
//! structural edges (every loop header also reaches its exit, every
//! branch reaches its join). The approximation only ever *merges* more
//! states, which keeps the forward analyses conservative.

use crate::parser::{Block, Stmt, StmtKind, TokRange};

/// One unit of work for the dataflow transfer function.
#[derive(Debug, Clone, Copy)]
pub enum Step<'a> {
    /// A leaf statement: `let`, assignment, or opaque expression.
    Stmt(&'a Stmt),
    /// A `for` loop header (the referenced statement is `StmtKind::For`);
    /// binds the loop pattern from the iterated expression.
    ForHeader(&'a Stmt),
    /// A branch or loop condition / match scrutinee, uses only.
    Cond(TokRange),
}

impl<'a> Step<'a> {
    /// The source line this step anchors diagnostics to.
    pub fn line(&self) -> u32 {
        match self {
            Step::Stmt(s) | Step::ForHeader(s) => s.line,
            Step::Cond(_) => 0,
        }
    }
}

/// A straight-line run of steps with successor edges.
#[derive(Debug, Default)]
pub struct BasicBlock<'a> {
    /// The steps, in execution order.
    pub steps: Vec<Step<'a>>,
    /// Indices of successor blocks.
    pub succs: Vec<usize>,
    /// How many loops enclose this block (0 = straight-line).
    pub loop_depth: u32,
}

/// The control-flow graph of one function body. Block 0 is the entry.
#[derive(Debug, Default)]
pub struct Cfg<'a> {
    /// All basic blocks; edges index into this vector.
    pub blocks: Vec<BasicBlock<'a>>,
}

impl<'a> Cfg<'a> {
    /// Predecessor lists, derived from the successor edges.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, block) in self.blocks.iter().enumerate() {
            for &s in &block.succs {
                if s < preds.len() {
                    preds[s].push(b);
                }
            }
        }
        preds
    }
}

struct Builder<'a> {
    blocks: Vec<BasicBlock<'a>>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self, depth: u32) -> usize {
        self.blocks.push(BasicBlock {
            loop_depth: depth,
            ..BasicBlock::default()
        });
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.blocks[from].succs.push(to);
    }

    /// Lowers `block` starting in `cur`; returns the block that control
    /// falls out of.
    fn lower_block(&mut self, block: &'a Block, mut cur: usize, depth: u32) -> usize {
        for stmt in &block.stmts {
            match &stmt.kind {
                StmtKind::Let { .. } | StmtKind::Assign { .. } | StmtKind::Expr(_) => {
                    self.blocks[cur].steps.push(Step::Stmt(stmt));
                }
                StmtKind::Nested(inner) => {
                    cur = self.lower_block(inner, cur, depth);
                }
                StmtKind::If { cond, then, els } => {
                    self.blocks[cur].steps.push(Step::Cond(*cond));
                    let then_id = self.new_block(depth);
                    let join = self.new_block(depth);
                    self.edge(cur, then_id);
                    let t_end = self.lower_block(then, then_id, depth);
                    self.edge(t_end, join);
                    match els {
                        Some(e) => {
                            let els_id = self.new_block(depth);
                            self.edge(cur, els_id);
                            let e_end = self.lower_block(e, els_id, depth);
                            self.edge(e_end, join);
                        }
                        None => self.edge(cur, join),
                    }
                    cur = join;
                }
                StmtKind::Match { scrutinee, arms } => {
                    self.blocks[cur].steps.push(Step::Cond(*scrutinee));
                    let join = self.new_block(depth);
                    if arms.is_empty() {
                        self.edge(cur, join);
                    }
                    for arm in arms {
                        let arm_id = self.new_block(depth);
                        self.edge(cur, arm_id);
                        let a_end = self.lower_block(arm, arm_id, depth);
                        self.edge(a_end, join);
                    }
                    cur = join;
                }
                StmtKind::For { body, .. } => {
                    let header = self.new_block(depth);
                    self.edge(cur, header);
                    self.blocks[header].steps.push(Step::ForHeader(stmt));
                    let body_id = self.new_block(depth + 1);
                    let exit = self.new_block(depth);
                    self.edge(header, body_id);
                    self.edge(header, exit);
                    let b_end = self.lower_block(body, body_id, depth + 1);
                    self.edge(b_end, header);
                    cur = exit;
                }
                StmtKind::While { cond, body } => {
                    let header = self.new_block(depth);
                    self.edge(cur, header);
                    self.blocks[header].steps.push(Step::Cond(*cond));
                    let body_id = self.new_block(depth + 1);
                    let exit = self.new_block(depth);
                    self.edge(header, body_id);
                    self.edge(header, exit);
                    let b_end = self.lower_block(body, body_id, depth + 1);
                    self.edge(b_end, header);
                    cur = exit;
                }
                StmtKind::Loop { body } => {
                    let header = self.new_block(depth);
                    self.edge(cur, header);
                    let body_id = self.new_block(depth + 1);
                    let exit = self.new_block(depth);
                    self.edge(header, body_id);
                    // `break` approximation: the loop can be left.
                    self.edge(header, exit);
                    let b_end = self.lower_block(body, body_id, depth + 1);
                    self.edge(b_end, header);
                    cur = exit;
                }
            }
        }
        cur
    }
}

/// Lowers a function body into its CFG. Block 0 is the entry block.
pub fn lower(body: &Block) -> Cfg<'_> {
    let mut b = Builder { blocks: Vec::new() };
    let entry = b.new_block(0);
    b.lower_block(body, entry, 0);
    Cfg { blocks: b.blocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn cfg_of(src: &str) -> (Vec<u32>, usize) {
        let lexed = lex(src);
        let ast = parse(&lexed.tokens);
        let body = ast.fns[0].body.as_ref().expect("body");
        let cfg = lower(body);
        let depths: Vec<u32> = cfg
            .blocks
            .iter()
            .filter(|b| !b.steps.is_empty())
            .map(|b| b.loop_depth)
            .collect();
        (depths, cfg.blocks.len())
    }

    #[test]
    fn straight_line_is_one_block() {
        let (depths, n) = cfg_of("fn f() { let a = 1; let b = 2; }");
        assert_eq!(depths, vec![0]);
        assert_eq!(n, 1);
    }

    #[test]
    fn loops_raise_depth() {
        let (depths, _) = cfg_of("fn f(xs: &[f64]) { for x in xs { let y = x; } }");
        // Header at depth 0, body statement at depth 1.
        assert!(depths.contains(&0));
        assert!(depths.contains(&1));
    }

    #[test]
    fn nested_loops_stack() {
        let lexed = lex("fn f() { for a in v { for b in w { let c = 1; } } }");
        let ast = parse(&lexed.tokens);
        let cfg = lower(ast.fns[0].body.as_ref().expect("body"));
        let max_depth = cfg.blocks.iter().map(|b| b.loop_depth).max().unwrap_or(0);
        assert_eq!(max_depth, 2);
    }

    #[test]
    fn branches_fork_and_join() {
        let lexed = lex("fn f(x: u32) { if x > 0 { let a = 1; } else { let b = 2; } let c = 3; }");
        let ast = parse(&lexed.tokens);
        let cfg = lower(ast.fns[0].body.as_ref().expect("body"));
        // Entry forks to two branches.
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        let preds = cfg.preds();
        // Some block joins both branches back.
        assert!(preds.iter().any(|p| p.len() == 2));
    }

    #[test]
    fn back_edges_exist_for_loops() {
        let lexed = lex("fn f() { loop { let x = 1; } }");
        let ast = parse(&lexed.tokens);
        let cfg = lower(ast.fns[0].body.as_ref().expect("body"));
        // Some edge points to an earlier block (the back edge).
        let back = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&s| s <= i));
        assert!(back);
    }
}
