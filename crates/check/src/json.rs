//! A minimal JSON value, parser, and writer — enough for the baseline
//! file and `--json` output without external dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; the schemas here only use small ints).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes and quotes a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a value with two-space indentation.
pub fn render(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, 0, &mut out);
    out
}

fn write_value(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            // hetero-check: allow(float-eq) — fract() is exactly 0.0 iff the value is integral
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Value::Str(s) => out.push_str(&quote(s)),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_value(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                out.push_str(&quote(k));
                out.push_str(": ");
                write_value(v, indent + 1, out);
                out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Parses a JSON document, returning the value and a description of the
/// first error if the input is malformed.
pub fn parse(src: &str) -> Result<Value, String> {
    let chars: Vec<char> = src.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing characters at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn expect_char(chars: &[char], pos: &mut usize, want: char) -> Result<(), String> {
    if chars.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{want}` at offset {}, found {:?}",
            *pos,
            chars.get(*pos)
        ))
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Value, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(chars, pos);
                let key = parse_string(chars, pos)?;
                skip_ws(chars, pos);
                expect_char(chars, pos, ':')?;
                let value = parse_value(chars, pos)?;
                map.insert(key, value);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    other => return Err(format!("expected `,` or `}}`, found {other:?}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("expected `,` or `]`, found {other:?}")),
                }
            }
        }
        Some('"') => Ok(Value::Str(parse_string(chars, pos)?)),
        Some('t') => parse_keyword(chars, pos, "true", Value::Bool(true)),
        Some('f') => parse_keyword(chars, pos, "false", Value::Bool(false)),
        Some('n') => parse_keyword(chars, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == '-' => {
            let start = *pos;
            if chars.get(*pos) == Some(&'-') {
                *pos += 1;
            }
            while chars
                .get(*pos)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
            {
                *pos += 1;
            }
            let text: String = chars[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
        other => Err(format!("unexpected {other:?} at offset {pos}")),
    }
}

fn parse_keyword(
    chars: &[char],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, String> {
    for want in word.chars() {
        expect_char(chars, pos, want)?;
    }
    Ok(value)
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    expect_char(chars, pos, '"')?;
    let mut out = String::new();
    loop {
        match chars.get(*pos) {
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match chars.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = chars
                            .get(*pos + 1..*pos + 5)
                            .map(|s| s.iter().collect())
                            .unwrap_or_default();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(c) => {
                out.push(*c);
                *pos += 1;
            }
            None => return Err("unterminated string".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let src = r#"{"version": 1, "entries": [{"lint": "unwrap", "file": "a/b.rs", "line": 3}]}"#;
        let v = parse(src).expect("parses");
        assert_eq!(v.get("version").and_then(Value::as_num), Some(1.0));
        let entries = v.get("entries").and_then(Value::as_arr).expect("array");
        assert_eq!(
            entries[0].get("lint").and_then(Value::as_str),
            Some("unwrap")
        );
        let rendered = render(&v);
        assert_eq!(parse(&rendered).expect("reparses"), v);
    }

    #[test]
    fn escapes() {
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        let v = parse(r#""a\"b\\c\ndA""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
