//! Forward dataflow over the [`crate::cfg`] graphs.
//!
//! One combined analysis tracks, per variable, a small set of facts the
//! deep lints need:
//!
//! - **float scalar / float container** — provably `f64`/`f32`-valued
//!   bindings (from parameter types, `let` ascriptions, float literals,
//!   or elements of float containers). The naked-float-accumulation lint
//!   fires only on accumulators it can *prove* are floats, so `BigUint`
//!   and `Ratio` accumulation loops stay silent.
//! - **hash container** — bindings that hold a `HashMap`/`HashSet`,
//!   whose iteration order is nondeterministic.
//! - **unordered** — values derived from hash iteration that have not
//!   been sorted yet (`m.keys().collect::<Vec<_>>()`); a subsequent
//!   `.sort*()` call clears the fact.
//!
//! Facts propagate forward through the CFG with set-union joins at
//! branch merges and a fixpoint over loop back edges, so a taint picked
//! up on one path survives to every use it can reach.

use crate::cfg::{Cfg, Step};
use crate::lexer::{Token, TokenKind};
use crate::parser::{Param, StmtKind, TokRange};
use std::collections::BTreeMap;

/// Per-variable fact bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VarFact(u8);

impl VarFact {
    /// Provably `f64`/`f32`-valued.
    pub const FLOAT_SCALAR: VarFact = VarFact(1);
    /// A container (slice/Vec/array) of floats.
    pub const FLOAT_CONTAINER: VarFact = VarFact(2);
    /// A `HashMap`/`HashSet`.
    pub const HASH_CONTAINER: VarFact = VarFact(4);
    /// Derived from hash iteration and not yet sorted.
    pub const UNORDERED: VarFact = VarFact(8);

    /// Set union of two fact sets.
    pub fn union(self, other: VarFact) -> VarFact {
        VarFact(self.0 | other.0)
    }

    /// Whether every bit of `other` is present.
    pub fn has(self, other: VarFact) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any bit of `other` is present.
    pub fn any(self, other: VarFact) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether no facts are known.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Removes the bits of `other`.
    pub fn without(self, other: VarFact) -> VarFact {
        VarFact(self.0 & !other.0)
    }
}

/// The abstract state: facts per variable name.
pub type Env = BTreeMap<String, VarFact>;

/// Joins two environments key-wise (set union).
pub fn join(a: &Env, b: &Env) -> Env {
    let mut out = a.clone();
    for (k, v) in b {
        let cur = out.get(k).copied().unwrap_or_default();
        out.insert(k.clone(), cur.union(*v));
    }
    out
}

/// Hash-iteration adapter methods: calling one of these on a hash
/// container yields nondeterministically ordered items.
pub const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Methods that impose a deterministic order on a collection in place.
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// The combined variable-fact analysis over one function.
pub struct VarFlow<'a> {
    toks: &'a [Token],
}

impl<'a> VarFlow<'a> {
    /// Builds the analysis over a file's token stream.
    pub fn new(toks: &'a [Token]) -> Self {
        VarFlow { toks }
    }

    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    /// Facts encoded by a type's token text (`& [ f64 ]`, `Vec < f64 >`,
    /// `HashMap < String , f64 >`, plain `f64`).
    pub fn type_flags_text(ty: &str) -> VarFact {
        let mut f = VarFact::default();
        if ty.contains("HashMap") || ty.contains("HashSet") {
            f = f.union(VarFact::HASH_CONTAINER);
        }
        if ty.contains("f64") || ty.contains("f32") {
            let container = ty.contains('[')
                || ty.contains("Vec")
                || ty.contains("VecDeque")
                || ty.contains("BTreeMap")
                || ty.contains("HashMap");
            f = f.union(if container {
                VarFact::FLOAT_CONTAINER
            } else {
                VarFact::FLOAT_SCALAR
            });
        }
        f
    }

    /// [`Self::type_flags_text`] over a token range.
    pub fn type_flags_range(&self, r: TokRange) -> VarFact {
        let text = self.range_text(r);
        Self::type_flags_text(&text)
    }

    fn range_text(&self, (start, end): TokRange) -> String {
        let mut out = String::new();
        for i in start..end {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.text(i));
        }
        out
    }

    /// Whether the range contains a hash-rooted iteration: an identifier
    /// with the hash fact followed by `.<iter-method> (`, or iterated
    /// directly (`for x in &m`).
    pub fn hash_iteration_root(&self, (start, end): TokRange, env: &Env) -> Option<String> {
        for i in start..end {
            if self.kind(i) != Some(TokenKind::Ident) {
                continue;
            }
            let name = self.text(i);
            let fact = env.get(name).copied().unwrap_or_default();
            if !fact.has(VarFact::HASH_CONTAINER) {
                continue;
            }
            // Direct iteration (`&m`, `m`) or an iteration-adapter chain.
            if self.text(i + 1) == "."
                && HASH_ITER_METHODS.contains(&self.text(i + 2))
                && self.text(i + 3) == "("
            {
                return Some(name.to_string());
            }
            // Bare/borrowed mention covers `for k in &m`.
            if self.text(i + 1) != "." {
                return Some(name.to_string());
            }
        }
        None
    }

    /// Facts of an initialiser/right-hand-side expression range.
    pub fn init_flags(&self, r: TokRange, env: &Env) -> VarFact {
        let (start, end) = r;
        let mut f = VarFact::default();
        let mut saw_float_literal = false;
        let mut vec_macro = false;
        let mut has_collect = false;
        let mut hash_iter = false;
        let mut sorted = false;
        for i in start..end {
            let t = self.text(i);
            match self.kind(i) {
                Some(TokenKind::Float) => saw_float_literal = true,
                Some(TokenKind::Ident) => {
                    match t {
                        "vec" if self.text(i + 1) == "!" => vec_macro = true,
                        "f64" | "f32" => saw_float_literal = true,
                        "HashMap" | "HashSet" if self.text(i + 1) == "::" => {
                            f = f.union(VarFact::HASH_CONTAINER);
                        }
                        "collect" => {
                            has_collect = true;
                            // Turbofish: `collect :: < Ty … >`.
                            if self.text(i + 1) == "::" && self.text(i + 2) == "<" {
                                let close = self.turbofish_end(i + 2, end);
                                f = f.union(self.type_flags_range((i + 3, close)));
                                let ty = self.range_text((i + 3, close));
                                if ty.contains("BTree") {
                                    sorted = true;
                                }
                            }
                        }
                        m if SORT_METHODS.contains(&m) => sorted = true,
                        _ => {
                            let fact = env.get(t).copied().unwrap_or_default();
                            if fact.any(VarFact::FLOAT_SCALAR) {
                                f = f.union(VarFact::FLOAT_SCALAR);
                            }
                            if fact.any(VarFact::FLOAT_CONTAINER) {
                                // Indexing a float container yields a
                                // float scalar; aliasing keeps container.
                                if self.text(i + 1) == "[" {
                                    f = f.union(VarFact::FLOAT_SCALAR);
                                } else {
                                    f = f.union(VarFact::FLOAT_CONTAINER);
                                }
                            }
                            if fact.any(VarFact::UNORDERED) {
                                f = f.union(VarFact::UNORDERED);
                            }
                            if fact.has(VarFact::HASH_CONTAINER)
                                && self.text(i + 1) == "."
                                && HASH_ITER_METHODS.contains(&self.text(i + 2))
                            {
                                hash_iter = true;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        if saw_float_literal {
            f = f.union(if vec_macro || self.text(start) == "[" {
                VarFact::FLOAT_CONTAINER
            } else {
                VarFact::FLOAT_SCALAR
            });
        }
        if hash_iter && has_collect && !sorted {
            f = f.union(VarFact::UNORDERED);
        }
        f
    }

    /// The index just past a `< … >` turbofish starting at `<`.
    fn turbofish_end(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < end {
            match self.text(j) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "(" | ";" => return j,
                _ => {}
            }
            if depth <= 0 {
                return j;
            }
            j += 1;
        }
        end
    }

    /// Initial environment from the function's parameters.
    pub fn init_env(params: &[Param]) -> Env {
        let mut env = Env::new();
        for p in params {
            let f = Self::type_flags_text(&p.ty);
            if f.is_empty() {
                continue;
            }
            for name in &p.names {
                env.insert(name.clone(), f);
            }
        }
        env
    }

    /// Applies one step's effect to the environment.
    pub fn transfer(&self, step: &Step<'_>, env: &mut Env) {
        match step {
            Step::Stmt(stmt) => match &stmt.kind {
                StmtKind::Let { names, ty, init } => {
                    // An explicit ascription is authoritative for the
                    // type bits (`let n: Vec<u64> = floats…floor()…` is
                    // not a float container); only the provenance bit
                    // flows through from the initialiser.
                    let f = match ty {
                        Some(t) => {
                            let mut f = self.type_flags_range(*t);
                            if let Some(i) = init {
                                if self.init_flags(*i, env).has(VarFact::UNORDERED) {
                                    f = f.union(VarFact::UNORDERED);
                                }
                            }
                            f
                        }
                        None => init.map(|i| self.init_flags(i, env)).unwrap_or_default(),
                    };
                    for name in names {
                        env.insert(name.clone(), f);
                    }
                }
                StmtKind::Assign { target, op, value } if op == "=" => {
                    // Plain reassignment of a single identifier.
                    let (s, e) = *target;
                    if e == s + 1 && self.kind(s) == Some(TokenKind::Ident) {
                        let f = self.init_flags(*value, env);
                        env.insert(self.text(s).to_string(), f);
                    }
                }
                StmtKind::Expr(r) => {
                    // `v.sort*()` restores deterministic order.
                    let (start, end) = *r;
                    for i in start..end {
                        if self.kind(i) == Some(TokenKind::Ident)
                            && self.text(i + 1) == "."
                            && SORT_METHODS.contains(&self.text(i + 2))
                        {
                            let name = self.text(i).to_string();
                            if let Some(f) = env.get(&name).copied() {
                                env.insert(name, f.without(VarFact::UNORDERED));
                            }
                        }
                    }
                }
                _ => {}
            },
            Step::ForHeader(stmt) => {
                if let StmtKind::For { names, iter, .. } = &stmt.kind {
                    let iter_text = self.range_text(*iter);
                    let enumerated = iter_text.contains("enumerate");
                    let hash_root = self.hash_iteration_root(*iter, env).is_some();
                    let element = {
                        let f = self.init_flags(*iter, env);
                        let mut e = VarFact::default();
                        if f.any(VarFact::FLOAT_CONTAINER) {
                            e = e.union(VarFact::FLOAT_SCALAR);
                        }
                        if hash_root || f.any(VarFact::UNORDERED) {
                            e = e.union(VarFact::UNORDERED);
                        }
                        e
                    };
                    for (k, name) in names.iter().enumerate() {
                        // `enumerate()` prepends a counter binding.
                        let f = if enumerated && k == 0 {
                            VarFact::default()
                        } else {
                            element
                        };
                        env.insert(name.clone(), f);
                    }
                }
            }
            Step::Cond(_) => {}
        }
    }
}

/// Runs the analysis to fixpoint and returns the entry environment of
/// every block.
pub fn analyze(cfg: &Cfg<'_>, flow: &VarFlow<'_>, init: Env) -> Vec<Env> {
    let n = cfg.blocks.len();
    let mut in_env: Vec<Env> = vec![Env::new(); n];
    if n == 0 {
        return in_env;
    }
    in_env[0] = init;
    let preds = cfg.preds();
    // Chaotic iteration in block order; the lattice has finite height
    // (bits per variable), so this terminates. The pass cap is a
    // belt-and-braces guard for degenerate graphs.
    for _round in 0..64 {
        let mut changed = false;
        for b in 0..n {
            let mut env = if preds[b].is_empty() {
                in_env[b].clone()
            } else {
                let mut acc = Env::new();
                for &p in &preds[b] {
                    let mut out = in_env[p].clone();
                    for step in &cfg.blocks[p].steps {
                        flow.transfer(step, &mut out);
                    }
                    acc = join(&acc, &out);
                }
                if b == 0 {
                    acc = join(&acc, &in_env[0]);
                }
                acc
            };
            if b == 0 {
                env = join(&env, &in_env[0]);
            }
            if env != in_env[b] {
                in_env[b] = env;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    in_env
}

/// Runs the fixpoint, then walks every block's steps in order, invoking
/// `cb(step, loop_depth, env-before-step)`.
pub fn visit<F>(cfg: &Cfg<'_>, flow: &VarFlow<'_>, init: Env, mut cb: F)
where
    F: FnMut(&Step<'_>, u32, &Env),
{
    let in_env = analyze(cfg, flow, init);
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut env = in_env[b].clone();
        for step in &block.steps {
            cb(step, block.loop_depth, &env);
            flow.transfer(step, &mut env);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn facts_at_accum(src: &str) -> Vec<(String, u32, VarFact)> {
        let lexed = lex(src);
        let ast = parse(&lexed.tokens);
        let flow = VarFlow::new(&lexed.tokens);
        let f = &ast.fns[0];
        let cfg = lower(f.body.as_ref().expect("body"));
        let mut out = Vec::new();
        visit(
            &cfg,
            &flow,
            VarFlow::init_env(&f.params),
            |step, depth, env| {
                if let Step::Stmt(s) = step {
                    if let StmtKind::Assign { target, op, .. } = &s.kind {
                        if op == "+=" {
                            let lexed_name = flow.text(target.0).to_string();
                            let fact = env.get(&lexed_name).copied().unwrap_or_default();
                            out.push((lexed_name, depth, fact));
                        }
                    }
                }
            },
        );
        out
    }

    #[test]
    fn float_accumulator_is_tracked_through_a_loop() {
        let got = facts_at_accum(
            "fn f(xs: &[f64]) -> f64 { let mut s = 0.0; for x in xs { s += x; } s }",
        );
        assert_eq!(got.len(), 1);
        let (name, depth, fact) = &got[0];
        assert_eq!(name, "s");
        assert_eq!(*depth, 1);
        assert!(fact.has(VarFact::FLOAT_SCALAR));
    }

    #[test]
    fn integer_accumulator_is_not_float() {
        let got =
            facts_at_accum("fn f(xs: &[u64]) -> u64 { let mut s = 0; for x in xs { s += x; } s }");
        assert_eq!(got.len(), 1);
        assert!(!got[0]
            .2
            .any(VarFact::FLOAT_SCALAR.union(VarFact::FLOAT_CONTAINER)));
    }

    #[test]
    fn param_types_seed_the_environment() {
        let env = VarFlow::init_env(
            &parse(&lex("fn f(a: f64, v: &mut Vec<f64>, m: &HashMap<u32, u32>) {}").tokens).fns[0]
                .params,
        );
        assert!(env["a"].has(VarFact::FLOAT_SCALAR));
        assert!(env["v"].has(VarFact::FLOAT_CONTAINER));
        assert!(env["m"].has(VarFact::HASH_CONTAINER));
    }

    #[test]
    fn hash_collect_is_unordered_until_sorted() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n let mut v: Vec<_> = m.keys().collect();\n v.sort();\n for k in v { }\n}";
        let lexed = lex(src);
        let ast = parse(&lexed.tokens);
        let flow = VarFlow::new(&lexed.tokens);
        let f = &ast.fns[0];
        let cfg = lower(f.body.as_ref().expect("body"));
        let mut for_fact = VarFact::default();
        visit(&cfg, &flow, VarFlow::init_env(&f.params), |step, _, env| {
            if let Step::ForHeader(_) = step {
                for_fact = env.get("v").copied().unwrap_or_default();
            }
        });
        // The sort() between collect and the loop cleared the taint.
        assert!(!for_fact.has(VarFact::UNORDERED));
        assert!(for_fact.is_empty() || !for_fact.has(VarFact::UNORDERED));
    }

    #[test]
    fn branch_join_unions_facts() {
        let src = "fn f(c: bool) { let mut x = 0; if c { x = 1.0; } let y = x; for _k in 0..2 { x += 1; } }";
        let got = facts_at_accum(src);
        // On one path x became a float; the join keeps the possibility.
        assert!(got[0].2.has(VarFact::FLOAT_SCALAR));
    }
}
