//! Lint identifiers, severity levels, and the diagnostic record.

use std::fmt;

/// Stable lint identifiers. The string form (`Lint::name`) is the public
/// contract: it appears in diagnostics, JSON output, allow comments, and
/// the baseline file, and must never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lint {
    /// `==` / `!=` against a float literal.
    FloatEq,
    /// `partial_cmp(..)` chained into `unwrap` / `expect` / `unwrap_or*`.
    PartialCmpUnwrap,
    /// Bare `.sum()` over floats in the numerical kernels.
    NakedSum,
    /// `.unwrap()` in library code.
    Unwrap,
    /// `.expect(..)` in library code.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` in library code.
    Panic,
    /// Slice/array indexing in library code (advisory).
    Indexing,
    /// Missing `#![forbid(unsafe_code)]` / `#![warn(missing_docs)]` headers.
    CratePolicy,
    /// Public formula items without a paper citation in their docs.
    PaperAnchor,
    /// `Profile { .. }` / `Params { .. }` literals outside their modules.
    ConstructorDiscipline,
    /// `println!` / `eprintln!` / `print!` / `eprint!` in library code.
    PrintInLib,
    /// An allow comment without a justification.
    AllowMissingReason,
    /// Panicking `SimTime::new` outside the simulator crate.
    SimTimeUnchecked,
    /// `std::thread::spawn` / `crossbeam` scopes in library code outside
    /// `crates/par` (ad-hoc threads bypass the pool's determinism and
    /// panic-containment contracts).
    ThreadSpawnOutsidePar,
    /// Naked `f64`/`f32` accumulation in a loop (dataflow-proven float
    /// `+=`/`-=`/`.sum()` not routed through `KahanSum`/`neumaier_sum`).
    FloatAccum,
    /// `HashMap`/`HashSet` iteration flowing into float math, output, or
    /// collected without a sort (nondeterministic order).
    NondetIteration,
    /// `Instant::now` / `SystemTime::now` in library code outside
    /// `crates/obs`.
    WallClockInLib,
    /// Non-`Relaxed` atomic memory ordering without a `// ordering:`
    /// justification comment.
    AtomicOrdering,
    /// A public API in `core`/`protocol`/`sim` that may panic (by
    /// call-graph propagation) without a `# Panics` doc section.
    PanicPropagation,
    /// A literal metric name passed to a `hetero_obs` recorder that is
    /// not listed in `hetero_obs::counters::REGISTRY`.
    CounterNameDiscipline,
    /// A `loop`/`while` in library code whose body retransmits or
    /// retries without a compile-visible bound (no `max`/`remaining`/
    /// `budget`-style identifier in the condition or body).
    UnboundedRetry,
    /// Approximate-math primitives (reciprocal seeds, Newton refinement,
    /// raw SIMD intrinsics) outside the certified fast-kernel modules
    /// (`crates/simd`, `crates/core/src/fastnum.rs`). Approximation is
    /// only legal where an error budget is stated and proptest-certified.
    ApproxMathOutsideKernel,
}

/// Every lint, in reporting order.
pub const ALL_LINTS: &[Lint] = &[
    Lint::FloatEq,
    Lint::PartialCmpUnwrap,
    Lint::NakedSum,
    Lint::Unwrap,
    Lint::Expect,
    Lint::Panic,
    Lint::Indexing,
    Lint::CratePolicy,
    Lint::PaperAnchor,
    Lint::ConstructorDiscipline,
    Lint::PrintInLib,
    Lint::AllowMissingReason,
    Lint::SimTimeUnchecked,
    Lint::ThreadSpawnOutsidePar,
    Lint::FloatAccum,
    Lint::NondetIteration,
    Lint::WallClockInLib,
    Lint::AtomicOrdering,
    Lint::PanicPropagation,
    Lint::CounterNameDiscipline,
    Lint::UnboundedRetry,
    Lint::ApproxMathOutsideKernel,
];

impl Lint {
    /// The stable string ID used in output, allow comments, and baselines.
    pub fn name(self) -> &'static str {
        match self {
            Lint::FloatEq => "float-eq",
            Lint::PartialCmpUnwrap => "partial-cmp-unwrap",
            Lint::NakedSum => "naked-sum",
            Lint::Unwrap => "unwrap",
            Lint::Expect => "expect",
            Lint::Panic => "panic",
            Lint::Indexing => "indexing",
            Lint::CratePolicy => "crate-policy",
            Lint::PaperAnchor => "paper-anchor",
            Lint::ConstructorDiscipline => "constructor-discipline",
            Lint::PrintInLib => "print-in-lib",
            Lint::AllowMissingReason => "allow-missing-reason",
            Lint::SimTimeUnchecked => "sim-time-unchecked",
            Lint::ThreadSpawnOutsidePar => "thread-spawn-outside-par",
            Lint::FloatAccum => "float-accum",
            Lint::NondetIteration => "nondet-iteration",
            Lint::WallClockInLib => "wall-clock-in-lib",
            Lint::AtomicOrdering => "atomic-ordering",
            Lint::PanicPropagation => "panic-propagation",
            Lint::CounterNameDiscipline => "counter-name-discipline",
            Lint::UnboundedRetry => "unbounded-retry",
            Lint::ApproxMathOutsideKernel => "approx-math-outside-kernel",
        }
    }

    /// Parses a stable lint ID (as written in allow comments).
    pub fn from_name(name: &str) -> Option<Lint> {
        ALL_LINTS.iter().copied().find(|l| l.name() == name)
    }

    /// Default severity. `indexing` is advisory because idiomatic
    /// bounds-checked indexing is pervasive and usually correct; the
    /// remaining lints gate the build.
    pub fn level(self) -> Level {
        match self {
            Lint::Indexing => Level::Warn,
            _ => Level::Deny,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a diagnostic gates the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Reported; fails the run (unless baselined or allowed).
    Deny,
    /// Reported; informational unless `--deny-warnings`.
    Warn,
}

impl Level {
    /// Lowercase label used in output.
    pub fn label(self) -> &'static str {
        match self {
            Level::Deny => "deny",
            Level::Warn => "warn",
        }
    }
}

/// One finding at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Severity (normally `lint.level()`).
    pub level: Level,
    /// Path relative to the workspace root, with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// A diagnostic that an allow comment suppressed.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The suppressed finding.
    pub diag: Diagnostic,
    /// The justification from the allow comment.
    pub reason: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}({}): {}",
            self.file,
            self.line,
            self.col,
            self.level.label(),
            self.lint,
            self.message
        )
    }
}
