//! `hetero-check`: the workspace's static-analysis pass.
//!
//! Walks every Rust source file in the workspace and enforces the
//! numerical and robustness invariants the heterogeneity model depends
//! on:
//!
//! - **Float hygiene** — no exact `==`/`!=` against float literals
//!   outside documented sentinels (`float-eq`), no
//!   `partial_cmp(..).unwrap()`-style sort comparators
//!   (`partial-cmp-unwrap`), and no bare `.sum()` in the numerical
//!   kernels (`naked-sum`, core/symfunc only — use
//!   `hetero_core::numeric::kahan_sum`).
//! - **Panic freedom** — no `.unwrap()` / `.expect(..)` / `panic!`-family
//!   macros in library crates (`unwrap`, `expect`, `panic`), and advisory
//!   reporting of slice indexing (`indexing`). Binaries, benches,
//!   examples, and tests are exempt.
//! - **Crate policy** — library crates must declare
//!   `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`
//!   (`crate-policy`), and public items in the formula modules
//!   (xmeasure, hecr, speedup) must cite their paper anchor
//!   (`paper-anchor`).
//! - **Constructor discipline** — `Profile` / `Params` are built through
//!   validated constructors, never struct literals
//!   (`constructor-discipline`).
//! - **Stdio discipline** — no `println!` / `eprintln!` / `print!` /
//!   `eprint!` in library crates (`print-in-lib`): libraries return data
//!   or record metrics through `hetero-obs`; only binaries present.
//! - **Metric-name discipline** — literal names passed to `hetero_obs`
//!   recorders in library code must appear in
//!   `hetero_obs::counters::REGISTRY` (`counter-name-discipline`), so
//!   the `obsdiff` namespace never silently forks.
//!
//! Findings are suppressible only with an inline
//! `// hetero-check: allow(<lint>) — <reason>` comment; the reason is
//! mandatory and suppressions are counted in the output. Known legacy
//! violations can be grandfathered in `check-baseline.json` for
//! burn-down; this repository keeps that file empty.
//!
//! The analysis is a hand-rolled lexer plus token-stream rules (the
//! build environment is offline, so no `syn`); it is intentionally
//! conservative and purely syntactic — e.g. `float-eq` only fires when a
//! float *literal* is adjacent to the comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod explain;
pub mod json;
pub mod lexer;
pub mod lints;
pub mod parser;

use baseline::Baseline;
use diag::{Diagnostic, Level, Suppressed};
use json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// What to scan and how to judge it.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (diagnostics are reported relative to it).
    pub root: PathBuf,
    /// Root-relative paths to scan; empty means the whole workspace.
    pub paths: Vec<PathBuf>,
    /// Treat advisory (`warn`) findings as failures.
    pub deny_warnings: bool,
}

/// The outcome of a full run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Violations that fail the run (deny-level, not baselined).
    pub new_deny: Vec<Diagnostic>,
    /// Advisory findings.
    pub warnings: Vec<Diagnostic>,
    /// Deny-level findings grandfathered by the baseline.
    pub baselined: Vec<Diagnostic>,
    /// Baseline entries that no longer match anything.
    pub stale: Vec<baseline::Entry>,
    /// Findings waived by allow comments.
    pub suppressed: Vec<Suppressed>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Per-crate may-panic statistics from the call-graph pass.
    pub call_graph: callgraph::Summary,
}

impl Outcome {
    /// The process exit code: 0 clean, 1 violations.
    pub fn exit_code(&self, deny_warnings: bool) -> i32 {
        if !self.new_deny.is_empty() || (deny_warnings && !self.warnings.is_empty()) {
            1
        } else {
            0
        }
    }
}

/// Runs the checker over the configured tree. IO problems (unreadable
/// root, malformed baseline) are reported as `Err`.
pub fn run(config: &Config) -> Result<Outcome, String> {
    let files = collect_files(config)?;
    let baseline = load_baseline(&config.root)?;
    let registry = load_counter_registry(&config.root);

    let mut outcome = Outcome {
        files_scanned: files.len(),
        ..Outcome::default()
    };
    let mut all_deny = Vec::new();
    let mut fn_facts = Vec::new();
    for rel in &files {
        let full = config.root.join(rel);
        let src = std::fs::read_to_string(&full)
            .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let scan = lints::scan_file_with_registry(&rel_str, &src, registry.as_deref());
        outcome.suppressed.extend(scan.suppressed);
        fn_facts.extend(scan.fn_facts);
        for diag in scan.diagnostics {
            match diag.level {
                Level::Warn => outcome.warnings.push(diag),
                Level::Deny => all_deny.push(diag),
            }
        }
    }

    // Second phase: close may-panic facts over the cross-file call graph.
    let (cg_diags, cg_suppressed, cg_summary) = callgraph::propagate(&fn_facts);
    all_deny.extend(cg_diags);
    outcome.suppressed.extend(cg_suppressed);
    outcome.call_graph = cg_summary;

    outcome.stale = baseline.stale(all_deny.iter());
    for diag in all_deny {
        if baseline.covers(&diag) {
            outcome.baselined.push(diag);
        } else {
            outcome.new_deny.push(diag);
        }
    }
    let by_pos = |d: &Diagnostic| (d.file.clone(), d.line, d.col, d.lint);
    outcome.new_deny.sort_by_key(by_pos);
    outcome.warnings.sort_by_key(by_pos);
    outcome.baselined.sort_by_key(by_pos);
    Ok(outcome)
}

/// Loads the metric-name registry from
/// `<root>/crates/obs/src/counters.rs` by lexing the file and collecting
/// the string literals of its `REGISTRY` array. `None` (registry file
/// absent or array not found) leaves the `counter-name-discipline` lint
/// inert, so the checker still works on partial trees and fixtures.
pub fn load_counter_registry(root: &Path) -> Option<Vec<String>> {
    let src = std::fs::read_to_string(root.join("crates/obs/src/counters.rs")).ok()?;
    let lexed = lexer::lex(&src);
    let toks = &lexed.tokens;
    let start = toks.iter().position(|t| t.text == "REGISTRY")?;
    // Walk past the `=` (the declared type also contains `[`), then to
    // the opening `[` of the array literal, and collect string literals
    // until the matching `]`.
    let eq = toks[start..].iter().position(|t| t.text == "=")? + start;
    let open = toks[eq..].iter().position(|t| t.text == "[")? + eq;
    let mut names = Vec::new();
    for t in &toks[open + 1..] {
        match t.text.as_str() {
            "]" => return Some(names),
            _ if t.kind == lexer::TokenKind::Str && t.text.starts_with('"') => {
                names.push(t.text.trim_matches('"').to_string());
            }
            _ => {}
        }
    }
    None
}

/// Loads `check-baseline.json` from the root; a missing file is an empty
/// baseline, a malformed one is an error.
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path = root.join("check-baseline.json");
    match std::fs::read_to_string(&path) {
        Ok(src) => Baseline::parse(&src).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Finds the `.rs` files to scan, sorted for deterministic output.
fn collect_files(config: &Config) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let roots: Vec<PathBuf> = if config.paths.is_empty() {
        ["crates", "tests", "examples"]
            .iter()
            .map(PathBuf::from)
            .filter(|p| config.root.join(p).exists())
            .collect()
    } else {
        config.paths.clone()
    };
    if roots.is_empty() {
        return Err(format!(
            "nothing to scan under {} (no crates/, tests/, or examples/)",
            config.root.display()
        ));
    }
    for rel in roots {
        let full = config.root.join(&rel);
        if full.is_file() {
            files.push(rel);
        } else if full.is_dir() {
            walk(&config.root, &rel, &mut files)
                .map_err(|e| format!("cannot walk {}: {e}", full.display()))?;
        } else {
            return Err(format!("no such path: {}", full.display()));
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(root: &Path, rel: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> =
        std::fs::read_dir(root.join(rel))?.collect::<std::io::Result<Vec<_>>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let child = rel.join(name.as_ref());
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if matches!(name.as_ref(), "target" | "fixtures" | ".git" | "shims") {
                continue;
            }
            walk(root, &child, files)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            files.push(child);
        }
    }
    Ok(())
}

/// Renders the human-readable report.
pub fn render_text(outcome: &Outcome, deny_warnings: bool) -> String {
    let mut out = String::new();
    for d in &outcome.new_deny {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    for d in &outcome.warnings {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    for d in &outcome.baselined {
        out.push_str(&format!("{d} [baselined]\n"));
    }
    for e in &outcome.stale {
        out.push_str(&format!(
            "check-baseline.json: stale entry {}:{} ({}) — fixed; prune it\n",
            e.file, e.line, e.lint
        ));
    }
    out.push_str(&format!(
        "hetero-check: {} files scanned, {} violations, {} warnings, \
         {} baselined, {} allowed (with reasons), {} stale baseline entries\n",
        outcome.files_scanned,
        outcome.new_deny.len(),
        outcome.warnings.len(),
        outcome.baselined.len(),
        outcome.suppressed.len(),
        outcome.stale.len(),
    ));
    let code = outcome.exit_code(deny_warnings);
    out.push_str(if code == 0 {
        "hetero-check: PASS\n"
    } else {
        "hetero-check: FAIL\n"
    });
    out
}

fn diag_value(d: &Diagnostic) -> Value {
    let mut obj = BTreeMap::new();
    obj.insert("lint".into(), Value::Str(d.lint.name().into()));
    obj.insert("level".into(), Value::Str(d.level.label().into()));
    obj.insert("file".into(), Value::Str(d.file.clone()));
    obj.insert("line".into(), Value::Num(f64::from(d.line)));
    obj.insert("column".into(), Value::Num(f64::from(d.col)));
    obj.insert("message".into(), Value::Str(d.message.clone()));
    Value::Obj(obj)
}

/// Renders the machine-readable (`--json`) report.
pub fn render_json(outcome: &Outcome, deny_warnings: bool) -> String {
    let mut root = BTreeMap::new();
    root.insert("version".into(), Value::Num(1.0));
    root.insert(
        "diagnostics".into(),
        Value::Arr(
            outcome
                .new_deny
                .iter()
                .chain(&outcome.warnings)
                .map(diag_value)
                .collect(),
        ),
    );
    root.insert(
        "baselined".into(),
        Value::Arr(outcome.baselined.iter().map(diag_value).collect()),
    );
    root.insert(
        "suppressed".into(),
        Value::Arr(
            outcome
                .suppressed
                .iter()
                .map(|s| {
                    let mut obj = match diag_value(&s.diag) {
                        Value::Obj(o) => o,
                        _ => BTreeMap::new(),
                    };
                    obj.insert("reason".into(), Value::Str(s.reason.clone()));
                    Value::Obj(obj)
                })
                .collect(),
        ),
    );
    root.insert(
        "stale_baseline".into(),
        Value::Arr(
            outcome
                .stale
                .iter()
                .map(|e| {
                    let mut obj = BTreeMap::new();
                    obj.insert("lint".into(), Value::Str(e.lint.clone()));
                    obj.insert("file".into(), Value::Str(e.file.clone()));
                    obj.insert("line".into(), Value::Num(f64::from(e.line)));
                    Value::Obj(obj)
                })
                .collect(),
        ),
    );
    let mut call_graph = BTreeMap::new();
    for (krate, stats) in &outcome.call_graph.per_crate {
        let mut obj = BTreeMap::new();
        obj.insert("public_fns".into(), Value::Num(stats.public_fns as f64));
        obj.insert(
            "may_panic_strong".into(),
            Value::Num(stats.may_panic_strong as f64),
        );
        obj.insert(
            "may_panic_indexing".into(),
            Value::Num(stats.may_panic_indexing as f64),
        );
        call_graph.insert(krate.clone(), Value::Obj(obj));
    }
    root.insert("call_graph".into(), Value::Obj(call_graph));
    let mut summary = BTreeMap::new();
    summary.insert(
        "files_scanned".into(),
        Value::Num(outcome.files_scanned as f64),
    );
    summary.insert(
        "violations".into(),
        Value::Num(outcome.new_deny.len() as f64),
    );
    summary.insert("warnings".into(), Value::Num(outcome.warnings.len() as f64));
    summary.insert(
        "baselined".into(),
        Value::Num(outcome.baselined.len() as f64),
    );
    summary.insert(
        "suppressed".into(),
        Value::Num(outcome.suppressed.len() as f64),
    );
    summary.insert(
        "stale_baseline".into(),
        Value::Num(outcome.stale.len() as f64),
    );
    summary.insert(
        "exit_code".into(),
        Value::Num(f64::from(outcome.exit_code(deny_warnings))),
    );
    root.insert("summary".into(), Value::Obj(summary));
    let mut out = json::render(&Value::Obj(root));
    out.push('\n');
    out
}
