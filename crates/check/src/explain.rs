//! `hetero-check --explain <lint>`: per-lint documentation pages.
//!
//! Each page answers: what the lint matches, why the workspace forbids
//! it, how to fix a finding, and (where relevant) the paper anchor the
//! rule protects. Pages are a static table so `--explain` works offline
//! and identically everywhere.

use crate::diag::{Lint, ALL_LINTS};

/// One documentation page.
pub struct Page {
    /// The lint documented.
    pub lint: Lint,
    /// What the lint matches.
    pub what: &'static str,
    /// Why the workspace forbids it.
    pub why: &'static str,
    /// How to fix a finding.
    pub fix: &'static str,
    /// Paper anchor, if the rule protects a specific result.
    pub anchor: Option<&'static str>,
}

/// The full catalog, in [`ALL_LINTS`] order.
pub const PAGES: &[Page] = &[
    Page {
        lint: Lint::FloatEq,
        what: "`==` or `!=` comparing against a float literal.",
        why: "Exact float equality is almost never the intended predicate; \
              rounding in a different accumulation order silently flips it.",
        fix: "Compare with an explicit tolerance, or justify an exact \
              sentinel with an allow comment.",
        anchor: Some(
            "X-measure values are compared across batched and scalar paths; \
             Theorem 2 reproduction requires tolerance-free *ordering*, not \
             equality tests.",
        ),
    },
    Page {
        lint: Lint::PartialCmpUnwrap,
        what: "`partial_cmp(..)` chained into `unwrap`/`expect`/`unwrap_or*`.",
        why: "NaN makes the comparator panic or silently misorder, which \
              breaks sorts that schedule work.",
        fix: "Use `f64::total_cmp` or handle the `None` arm explicitly.",
        anchor: None,
    },
    Page {
        lint: Lint::NakedSum,
        what: "Bare `.sum()` over floats in the numerical kernels \
               (`crates/core`, `crates/symfunc`).",
        why: "Naive summation accumulates rounding error dependent on \
              element order; the kernels must be bit-stable.",
        fix: "Route through `hetero_core::numeric::kahan_sum` or a \
              `KahanSum` accumulator.",
        anchor: Some(
            "Rosenberg–Chiang X-measure sums (Eq. 1) must match the \
             scalar recurrence bit-for-bit.",
        ),
    },
    Page {
        lint: Lint::Unwrap,
        what: "`.unwrap()` in library code.",
        why: "Library panics tear down callers that could have handled the \
              error; panic paths also bypass determinism bookkeeping.",
        fix: "Return `Result`/`Option`, or justify an invariant with an \
              allow comment naming the invariant.",
        anchor: None,
    },
    Page {
        lint: Lint::Expect,
        what: "`.expect(..)` in library code.",
        why: "Same contract as `unwrap`: libraries return errors, binaries \
              decide how to die.",
        fix: "Return `Result`/`Option`, or justify the invariant inline.",
        anchor: None,
    },
    Page {
        lint: Lint::Panic,
        what: "`panic!` / `unreachable!` / `todo!` / `unimplemented!` in \
               library code.",
        why: "Explicit panics in libraries are API landmines; `todo!` is \
              unfinished work shipping as a crash.",
        fix: "Return an error variant; keep `unreachable!` only behind a \
              justified allow naming the exhaustiveness argument.",
        anchor: None,
    },
    Page {
        lint: Lint::Indexing,
        what: "Slice/array indexing (`xs[i]`) in library code (advisory).",
        why: "Out-of-bounds indexing panics; iterators or `get` make the \
              bound explicit. Advisory because checked indexing is \
              pervasive and usually correct.",
        fix: "Prefer iterators, `get`, or destructuring; leave as-is when \
              the bound is locally obvious.",
        anchor: None,
    },
    Page {
        lint: Lint::CratePolicy,
        what: "A library crate missing `#![forbid(unsafe_code)]` or \
               `#![warn(missing_docs)]`.",
        why: "The workspace guarantees safe, documented libraries; the \
              headers make the guarantee machine-checked.",
        fix: "Add both attributes at the top of `lib.rs`.",
        anchor: None,
    },
    Page {
        lint: Lint::PaperAnchor,
        what: "A public item in the formula modules (xmeasure, hecr, \
               speedup) without a paper citation in its docs.",
        why: "Every formula must be traceable to the equation or theorem \
              it implements, or drift is unreviewable.",
        fix: "Cite the anchor, e.g. `(Rosenberg–Chiang, Eq. 1)`, in the \
              doc comment.",
        anchor: Some("The repo reproduces IPPS 2010 §3–§5; anchors are the audit trail."),
    },
    Page {
        lint: Lint::ConstructorDiscipline,
        what: "`Profile { .. }` / `Params { .. }` struct literals outside \
               their defining modules.",
        why: "The constructors validate invariants (positive rates, sorted \
              profiles); literals bypass validation.",
        fix: "Build through the validated constructor.",
        anchor: None,
    },
    Page {
        lint: Lint::PrintInLib,
        what: "`println!`-family macros in library code.",
        why: "Libraries return data or record metrics through `hetero-obs`; \
              stray stdio corrupts pinned CLI output.",
        fix: "Return the value, or record a counter/span via `hetero-obs`.",
        anchor: None,
    },
    Page {
        lint: Lint::AllowMissingReason,
        what: "A `// hetero-check: allow(..)` comment without a `— reason`.",
        why: "Suppressions without justification rot; the reason is the \
              review record.",
        fix: "Append `— <why this is sound>` to the allow comment.",
        anchor: None,
    },
    Page {
        lint: Lint::SimTimeUnchecked,
        what: "Panicking `SimTime::new` outside `crates/sim`.",
        why: "Out-of-range times must surface as errors at the boundary, \
              not panics deep in a run.",
        fix: "Use the fallible constructor and propagate the error.",
        anchor: None,
    },
    Page {
        lint: Lint::ThreadSpawnOutsidePar,
        what: "`std::thread::spawn` or crossbeam scopes in library code \
               outside `crates/par`.",
        why: "Ad-hoc threads bypass the pool's deterministic in-order \
              delivery and panic containment.",
        fix: "Submit work through `hetero_par::Pool`.",
        anchor: Some(
            "Parallel X-measure batches must be byte-identical at any \
             `HETERO_THREADS`; only the pool guarantees that.",
        ),
    },
    Page {
        lint: Lint::FloatAccum,
        what: "A dataflow-proven `f64`/`f32` accumulator updated with \
               `+=`/`-=` inside a loop, or a float `.sum()` reduction, \
               outside the compensated-summation helpers.",
        why: "Naive accumulation order changes the rounding error; results \
              then differ between scalar, batched, and replanned paths.",
        fix: "Accumulate through `KahanSum`/`hetero_core::numeric::\
              kahan_sum` (or `neumaier_sum`), or justify a provably \
              order-fixed loop with an allow comment.",
        anchor: Some(
            "Theorem 2's optimal-schedule recurrence is the reference; \
             every other path must reproduce its bits.",
        ),
    },
    Page {
        lint: Lint::NondetIteration,
        what: "Iteration over a `HashMap`/`HashSet` whose results flow \
               into float math, output, or an unsorted collect.",
        why: "Hash iteration order varies run to run; anything \
              order-sensitive downstream becomes nondeterministic.",
        fix: "Use `BTreeMap`/`BTreeSet`, or collect and sort before the \
              order-sensitive use.",
        anchor: Some(
            "Pinned CLI goldens and cross-run reproducibility of the \
             X-measure tables depend on stable iteration everywhere.",
        ),
    },
    Page {
        lint: Lint::WallClockInLib,
        what: "`Instant::now` / `SystemTime::now` in library code outside \
               `crates/obs`.",
        why: "Wall-clock reads make library behaviour time-dependent and \
              unreproducible; timing belongs to the observability layer.",
        fix: "Take time as a parameter, use `SimTime`, or move the \
              measurement into `hetero-obs` spans.",
        anchor: None,
    },
    Page {
        lint: Lint::AtomicOrdering,
        what: "A non-`Relaxed` atomic memory ordering (`SeqCst`, \
               `Acquire`, `Release`, `AcqRel`) without a `// ordering:` \
               justification comment on the same or previous line.",
        why: "Stronger orderings encode a happens-before argument; \
              undocumented ones are unreviewable and often cargo-culted.",
        fix: "State the synchronisation edge in a `// ordering: ...` \
              comment, or relax to `Relaxed` if none is needed.",
        anchor: None,
    },
    Page {
        lint: Lint::PanicPropagation,
        what: "A public fn in `crates/core`/`protocol`/`sim` that may \
               panic — directly or through its callees — without a \
               `# Panics` doc section.",
        why: "Callers of the core APIs must know every panic path; the \
              call-graph pass finds the ones local lints cannot see.",
        fix: "Document the contract under `# Panics`, make the panic \
              unreachable, or return an error instead.",
        anchor: None,
    },
    Page {
        lint: Lint::CounterNameDiscipline,
        what: "A string-literal metric name passed to a `hetero_obs` \
               recorder (`count`, `gauge_max`, `observe`, `observe_hist`, \
               `sketch`, `timed`) in library code that is not listed in \
               `hetero_obs::counters::REGISTRY`.",
        why: "The registry is the contract `obsdiff` and the JSONL \
              consumers key on; an unregistered name silently forks the \
              metric namespace and its runs can never be diffed against \
              a baseline.",
        fix: "Add the name to `REGISTRY` in `crates/obs/src/counters.rs` \
              (with a comment saying who records it), or reuse an \
              existing registered name.",
        anchor: None,
    },
    Page {
        lint: Lint::UnboundedRetry,
        what: "A `loop`/`while` in library code whose body calls a \
               retransmit/retry routine with no compile-visible bound \
               (no `max`/`remaining`/`budget`-style identifier in the \
               condition or body).",
        why: "Under injected result loss a retransmit loop with no budget \
              turns one persistent fault into a livelock; the simulator \
              then spins forever instead of reporting a missed deadline. \
              Every retry in the workspace is budgeted as data \
              (`losses_left`, `max_retries`), and loops must show the \
              same shape.",
        fix: "Thread the budget through the loop (`while left > 0`, \
              `for _ in 0..max_rounds`), or justify a by-construction \
              termination argument with an allow comment.",
        anchor: Some(
            "The PR 9 resilience sweep compares protocol families under \
             identical fault plans; an unbounded retry loop in any family \
             would hang the sweep rather than lose the comparison.",
        ),
    },
    Page {
        lint: Lint::ApproxMathOutsideKernel,
        what: "An approximate-math primitive in library code outside the \
               certified fast-kernel modules: a raw SIMD intrinsic \
               (`_mm*`/`__m*`), a reciprocal-approximation call or \
               constant (`rcp*`), or a Newton-refinement identifier.",
        why: "Strict mode promises a bit-reproducible evaluation order; \
              fast mode is legal only where an analytic error budget is \
              stated and proptest-certified against the exact oracle. \
              Approximation smuggled into any other module erodes both \
              contracts at once: goldens drift and no certificate covers \
              the error.",
        fix: "Move the kernel into `crates/simd` or \
              `crates/core/src/fastnum.rs` with a documented budget \
              (DESIGN.md \u{a7}17), or call the strict kernels / a \
              `NumericMode` entry point instead.",
        anchor: Some(
            "The PR 10 fast numeric mode breaks the Theorem 2 divider \
             ceiling with reciprocal-Newton kernels; the certificates \
             only hold because every approximation site lives inside the \
             two audited modules.",
        ),
    },
];

/// Renders the page for `name`, or `None` if the lint is unknown.
pub fn render(name: &str) -> Option<String> {
    let lint = Lint::from_name(name)?;
    let page = PAGES.iter().find(|p| p.lint == lint)?;
    let mut out = String::new();
    out.push_str(&format!(
        "{} ({})\n\n",
        page.lint.name(),
        page.lint.level().label()
    ));
    out.push_str(&format!("What:\n  {}\n\n", reflow(page.what)));
    out.push_str(&format!("Why:\n  {}\n\n", reflow(page.why)));
    out.push_str(&format!("Fix:\n  {}\n", reflow(page.fix)));
    if let Some(anchor) = page.anchor {
        out.push_str(&format!("\nPaper anchor:\n  {}\n", reflow(anchor)));
    }
    Some(out)
}

/// Lists every lint with its one-line "what" (for `--explain` errors).
pub fn catalog() -> String {
    let mut out = String::from("known lints:\n");
    for lint in ALL_LINTS {
        out.push_str(&format!("  {}\n", lint.name()));
    }
    out
}

fn reflow(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_lint_has_a_page() {
        for lint in ALL_LINTS {
            assert!(
                PAGES.iter().any(|p| p.lint == *lint),
                "missing --explain page for {}",
                lint.name()
            );
            assert!(render(lint.name()).is_some());
        }
    }

    #[test]
    fn pages_match_all_lints_exactly() {
        assert_eq!(PAGES.len(), ALL_LINTS.len());
    }

    #[test]
    fn unknown_lint_renders_nothing() {
        assert!(render("not-a-lint").is_none());
        assert!(catalog().contains("float-accum"));
    }

    #[test]
    fn rendered_page_has_all_sections() {
        let page = render("float-accum").unwrap();
        assert!(page.contains("What:"));
        assert!(page.contains("Why:"));
        assert!(page.contains("Fix:"));
        assert!(page.contains("Paper anchor:"));
    }
}
