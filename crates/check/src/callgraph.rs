//! Interprocedural may-panic propagation over the workspace call graph.
//!
//! [`crate::lints::scan_file`] collects one [`FnFacts`] record per
//! library function: its own panic sources (*strong* facts —
//! `.unwrap()` / `.expect(..)` / `panic!`-family, excluding ones an
//! allow comment justified — and the weaker *indexing* fact), the names
//! it calls, and whether its docs carry a `# Panics` section.
//! [`propagate`] then closes those facts over the call graph: a function
//! that calls a may-panic function may itself panic.
//!
//! Call resolution is name-based (the checker has no type information):
//! a free call `f(..)` matches free functions named `f`, a qualified
//! call `T::f(..)` matches `impl T` methods (falling back to free
//! functions for module paths like `seed::derive`), and a method call
//! `.f(..)` matches every impl method named `f`. This over-approximates,
//! which is the conservative direction for a may-panic analysis.
//!
//! The deny-level `panic-propagation` lint fires only on **public**
//! functions in `crates/core`, `crates/protocol`, and `crates/sim` whose
//! propagated *strong* fact is set and whose docs lack `# Panics`;
//! indexing-derived facts are reported in the JSON `call_graph` summary
//! but do not gate (idiomatic bounds-checked indexing is pervasive and
//! tracked by the advisory `indexing` lint).

use crate::diag::{Diagnostic, Lint, Suppressed};
use std::collections::BTreeMap;

/// Per-function facts harvested during the file scan.
#[derive(Debug, Clone)]
pub struct FnFacts {
    /// Root-relative file (forward slashes).
    pub file: String,
    /// The crate directory name (`core` for `crates/core/...`).
    pub krate: String,
    /// Function name.
    pub name: String,
    /// `impl` self-type for methods (`Pool` for `impl Pool { fn map }`).
    pub qual: Option<String>,
    /// Whether the function is `pub`.
    pub is_pub: bool,
    /// Declaration line.
    pub line: u32,
    /// Declaration column.
    pub col: u32,
    /// Whether the doc comment has a `# Panics` section.
    pub doc_panics: bool,
    /// A local strong panic source (`.unwrap()` at line N, ...), if any.
    pub strong: Option<String>,
    /// Whether the body contains (unsuppressed) slice/array indexing.
    pub indexing: bool,
    /// Callee keys: `"f"` free, `"T::f"` qualified, `".f"` method.
    pub calls: Vec<String>,
    /// Reason from a `// hetero-check: allow(panic-propagation)` comment
    /// on the declaration, if present.
    pub allow_reason: Option<String>,
}

/// Per-crate call-graph statistics for the JSON summary.
#[derive(Debug, Clone, Default)]
pub struct CrateStats {
    /// Public library functions seen.
    pub public_fns: usize,
    /// Public functions with a propagated strong may-panic fact.
    pub may_panic_strong: usize,
    /// Public functions with a propagated indexing-derived fact.
    pub may_panic_indexing: usize,
}

/// The machine-readable call-graph summary (`--json` `call_graph` key).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Stats per crate, keyed by crate directory name.
    pub per_crate: BTreeMap<String, CrateStats>,
}

/// Crates whose public may-panic APIs gate the build.
const GATED_CRATES: &[&str] = &["core", "protocol", "sim"];

/// Runs propagation and produces diagnostics plus the summary.
pub fn propagate(facts: &[FnFacts]) -> (Vec<Diagnostic>, Vec<Suppressed>, Summary) {
    let n = facts.len();
    // Resolution indices. Free functions by name; impl methods by bare
    // name and by `Type::name`.
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut qualified: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in facts.iter().enumerate() {
        match &f.qual {
            None => free.entry(f.name.as_str()).or_default().push(i),
            Some(q) => {
                methods.entry(f.name.as_str()).or_default().push(i);
                qualified
                    .entry(format!("{q}::{}", f.name))
                    .or_default()
                    .push(i);
            }
        }
    }
    let resolve = |key: &str| -> Vec<usize> {
        if let Some(m) = key.strip_prefix('.') {
            methods.get(m).cloned().unwrap_or_default()
        } else if key.contains("::") {
            if let Some(v) = qualified.get(key) {
                v.clone()
            } else {
                // Module-path call (`seed::derive`): match the last
                // segment against free functions.
                let last = key.rsplit("::").next().unwrap_or(key);
                free.get(last).cloned().unwrap_or_default()
            }
        } else {
            free.get(key).cloned().unwrap_or_default()
        }
    };

    // Closure to fixpoint over the bool lattice; witnesses record the
    // first call chain hop for the message.
    let mut strong: Vec<Option<String>> = facts.iter().map(|f| f.strong.clone()).collect();
    let mut indexing: Vec<bool> = facts.iter().map(|f| f.indexing).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            for key in &facts[i].calls {
                for j in resolve(key) {
                    if j == i {
                        continue;
                    }
                    if strong[i].is_none() {
                        if let Some(w) = &strong[j] {
                            let callee = match &facts[j].qual {
                                Some(q) => format!("{q}::{}", facts[j].name),
                                None => facts[j].name.clone(),
                            };
                            strong[i] = Some(format!("calls `{callee}` which {w}"));
                            changed = true;
                        }
                    }
                    if !indexing[i] && indexing[j] {
                        indexing[i] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut summary = Summary::default();
    let mut diags = Vec::new();
    let mut suppressed = Vec::new();
    for (i, f) in facts.iter().enumerate() {
        let stats = summary.per_crate.entry(f.krate.clone()).or_default();
        if f.is_pub {
            stats.public_fns += 1;
            if strong[i].is_some() && !f.doc_panics {
                stats.may_panic_strong += 1;
            }
            if indexing[i] && !f.doc_panics {
                stats.may_panic_indexing += 1;
            }
        }
        if !f.is_pub || f.doc_panics || !GATED_CRATES.contains(&f.krate.as_str()) {
            continue;
        }
        let Some(witness) = &strong[i] else { continue };
        let display = match &f.qual {
            Some(q) => format!("{q}::{}", f.name),
            None => f.name.clone(),
        };
        let diag = Diagnostic {
            lint: Lint::PanicPropagation,
            level: Lint::PanicPropagation.level(),
            file: f.file.clone(),
            line: f.line,
            col: f.col,
            message: format!(
                "public fn `{display}` may panic ({witness}) but its docs \
                 have no `# Panics` section — document the contract or \
                 make the panic unreachable"
            ),
        };
        match &f.allow_reason {
            Some(reason) => suppressed.push(Suppressed {
                diag,
                reason: reason.clone(),
            }),
            None => diags.push(diag),
        }
    }
    (diags, suppressed, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(name: &str, krate: &str, strong: Option<&str>, calls: &[&str]) -> FnFacts {
        FnFacts {
            file: format!("crates/{krate}/src/lib.rs"),
            krate: krate.into(),
            name: name.into(),
            qual: None,
            is_pub: true,
            line: 1,
            col: 1,
            doc_panics: false,
            strong: strong.map(String::from),
            indexing: false,
            calls: calls.iter().map(|s| s.to_string()).collect(),
            allow_reason: None,
        }
    }

    #[test]
    fn strong_facts_propagate_through_calls() {
        let facts = vec![
            f("leaf", "core", Some("calls `.unwrap()` at line 9"), &[]),
            f("mid", "core", None, &["leaf"]),
            f("top", "core", None, &["mid"]),
        ];
        let (diags, _, summary) = propagate(&facts);
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().any(|d| d.message.contains("`top`")));
        assert_eq!(summary.per_crate["core"].may_panic_strong, 3);
    }

    #[test]
    fn panics_doc_section_silences_the_lint() {
        let mut facts = vec![f("leaf", "core", Some("x"), &[])];
        facts[0].doc_panics = true;
        let (diags, _, summary) = propagate(&facts);
        assert!(diags.is_empty());
        assert_eq!(summary.per_crate["core"].may_panic_strong, 0);
    }

    #[test]
    fn non_gated_crates_report_in_summary_only() {
        let facts = vec![f("leaf", "linalg", Some("x"), &[])];
        let (diags, _, summary) = propagate(&facts);
        assert!(diags.is_empty());
        assert_eq!(summary.per_crate["linalg"].may_panic_strong, 1);
    }

    #[test]
    fn allow_comment_moves_the_diag_to_suppressed() {
        let mut facts = vec![f("leaf", "core", Some("x"), &[])];
        facts[0].allow_reason = Some("documented at module level".into());
        let (diags, sup, _) = propagate(&facts);
        assert!(diags.is_empty());
        assert_eq!(sup.len(), 1);
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let mut leaf = f("run", "core", Some("x"), &[]);
        leaf.qual = Some("Engine".into());
        let top = f("drive", "core", None, &[".run"]);
        let (diags, _, _) = propagate(&[leaf, top]);
        assert_eq!(diags.len(), 2);
    }

    #[test]
    fn private_fns_do_not_fire() {
        let mut facts = vec![f("leaf", "core", Some("x"), &[])];
        facts[0].is_pub = false;
        let (diags, _, summary) = propagate(&facts);
        assert!(diags.is_empty());
        assert_eq!(summary.per_crate["core"].public_fns, 0);
    }
}
