//! End-to-end fixture tests for the `hetero-check` binary.
//!
//! Each fixture under `tests/fixtures/<case>/` is a miniature workspace;
//! the tests run the real binary with `--root <case> --json` and assert
//! on the machine-readable report and the process exit code. The real
//! workspace walk skips directories named `fixtures`, so these trees
//! never pollute a normal run.

use hetero_check::json::{parse, Value};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(case)
}

struct Report {
    code: i32,
    stdout: String,
    stderr: String,
    root: Value,
}

fn run_check(case: &str, extra: &[&str]) -> Report {
    let out = Command::new(env!("CARGO_BIN_EXE_hetero-check"))
        .arg("--json")
        .arg("--root")
        .arg(fixture(case))
        .args(extra)
        .output()
        .expect("hetero-check binary runs");
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    let root = parse(&stdout).unwrap_or(Value::Null);
    Report {
        code: out.status.code().expect("process exits normally"),
        stdout,
        stderr,
        root,
    }
}

/// `(lint, file, line, level)` rows from a diagnostics-shaped array.
fn rows(report: &Report, key: &str) -> Vec<(String, String, i64, String)> {
    report
        .root
        .get(key)
        .and_then(Value::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|d| {
            (
                d.get("lint")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                d.get("file")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                d.get("line").and_then(Value::as_num).unwrap_or(0.0) as i64,
                d.get("level")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            )
        })
        .collect()
}

fn summary_num(report: &Report, key: &str) -> i64 {
    report
        .root
        .get("summary")
        .and_then(|s| s.get(key))
        .and_then(Value::as_num)
        .expect("summary field present") as i64
}

fn has(rows: &[(String, String, i64, String)], lint: &str, file: &str, line: i64) -> bool {
    rows.iter()
        .any(|(l, f, n, _)| l == lint && f == file && *n == line)
}

// --- every lint ID firing, with exact positions -------------------------

#[test]
fn violations_fixture_fires_every_deny_lint() {
    let r = run_check("violations", &[]);
    assert_eq!(r.code, 1, "stdout: {}\nstderr: {}", r.stdout, r.stderr);
    let d = rows(&r, "diagnostics");

    assert!(has(&d, "float-eq", "crates/demo/src/float.rs", 4), "{d:?}");
    assert!(has(&d, "partial-cmp-unwrap", "crates/demo/src/float.rs", 8));
    assert!(has(&d, "unwrap", "crates/demo/src/panics.rs", 4));
    assert!(has(&d, "expect", "crates/demo/src/panics.rs", 5));
    assert!(has(&d, "panic", "crates/demo/src/panics.rs", 7));
    assert!(has(&d, "naked-sum", "crates/core/src/xmeasure.rs", 5));
    assert!(has(&d, "paper-anchor", "crates/core/src/xmeasure.rs", 4));
    assert!(has(
        &d,
        "constructor-discipline",
        "crates/demo/src/ctor.rs",
        5
    ));
    assert!(has(
        &d,
        "allow-missing-reason",
        "crates/demo/src/allow.rs",
        5
    ));
    // The reason-less allow comment does NOT waive the unwrap under it.
    assert!(has(&d, "unwrap", "crates/demo/src/allow.rs", 6));
    assert!(has(&d, "print-in-lib", "crates/demo/src/print.rs", 4));
    assert!(has(&d, "print-in-lib", "crates/demo/src/print.rs", 5));
    // The panicking constructor fires; the fallible API stays silent.
    assert!(has(
        &d,
        "sim-time-unchecked",
        "crates/demo/src/simtime.rs",
        4
    ));
    let simtime = d
        .iter()
        .filter(|(l, _, _, _)| l == "sim-time-unchecked")
        .count();
    assert_eq!(simtime, 1, "{d:?}");
    // Both spawning entry points fire; the parallelism probe stays silent.
    assert!(has(
        &d,
        "thread-spawn-outside-par",
        "crates/demo/src/spawn.rs",
        4
    ));
    assert!(has(
        &d,
        "thread-spawn-outside-par",
        "crates/demo/src/spawn.rs",
        5
    ));
    let spawns = d
        .iter()
        .filter(|(l, _, _, _)| l == "thread-spawn-outside-par")
        .count();
    assert_eq!(spawns, 2, "{d:?}");
    // Missing headers are reported once per header.
    let policy = d
        .iter()
        .filter(|(l, f, _, _)| l == "crate-policy" && f == "crates/demo/src/lib.rs")
        .count();
    assert_eq!(policy, 2, "{d:?}");
    // Indexing rides along as a warning, not a violation.
    assert!(has(&d, "indexing", "crates/demo/src/panics.rs", 9));
    let (_, _, _, level) = d
        .iter()
        .find(|(l, _, _, _)| l == "indexing")
        .expect("indexing reported");
    assert_eq!(level, "warn");

    // The dataflow generation: each deep lint fires at its planted site.
    assert!(has(&d, "float-accum", "crates/demo/src/accum.rs", 7));
    assert!(has(&d, "nondet-iteration", "crates/demo/src/nondet.rs", 8));
    assert!(has(&d, "float-accum", "crates/demo/src/nondet.rs", 9));
    // The chained `hash.values().sum()` form fires both lints on one line.
    assert!(has(&d, "nondet-iteration", "crates/demo/src/nondet.rs", 16));
    assert!(has(&d, "float-accum", "crates/demo/src/nondet.rs", 16));
    assert!(has(&d, "wall-clock-in-lib", "crates/demo/src/clock.rs", 5));
    assert!(has(&d, "atomic-ordering", "crates/demo/src/atomic.rs", 10));
    // Interprocedural: `risky` panics through `helper`'s unwrap; only the
    // undocumented public fn fires, not `documented` or `waived`.
    assert!(has(&d, "unwrap", "crates/core/src/panicky.rs", 4));
    assert!(has(
        &d,
        "panic-propagation",
        "crates/core/src/panicky.rs",
        8
    ));
    let panics = d
        .iter()
        .filter(|(l, _, _, _)| l == "panic-propagation")
        .count();
    assert_eq!(panics, 1, "{d:?}");

    // Metric-name discipline: the rogue name fires once, the registered
    // recorder call on line 5 stays silent.
    assert!(has(
        &d,
        "counter-name-discipline",
        "crates/demo/src/metrics.rs",
        10
    ));
    let names = d
        .iter()
        .filter(|(l, _, _, _)| l == "counter-name-discipline")
        .count();
    assert_eq!(names, 1, "{d:?}");

    // The unbounded retransmit loop fires; the budgeted one below it
    // stays silent.
    assert!(has(&d, "unbounded-retry", "crates/demo/src/retry.rs", 5));
    let retries = d
        .iter()
        .filter(|(l, _, _, _)| l == "unbounded-retry")
        .count();
    assert_eq!(retries, 1, "{d:?}");

    // Approximation outside the certified kernels: all three shapes fire
    // (reciprocal call, Newton step, raw SIMD intrinsic).
    assert!(has(
        &d,
        "approx-math-outside-kernel",
        "crates/demo/src/approx.rs",
        6
    ));
    assert!(has(
        &d,
        "approx-math-outside-kernel",
        "crates/demo/src/approx.rs",
        7
    ));
    assert!(has(
        &d,
        "approx-math-outside-kernel",
        "crates/demo/src/approx.rs",
        8
    ));
    let approx = d
        .iter()
        .filter(|(l, _, _, _)| l == "approx-math-outside-kernel")
        .count();
    assert_eq!(approx, 3, "{d:?}");

    assert_eq!(summary_num(&r, "violations"), 31);
    assert_eq!(summary_num(&r, "warnings"), 1);
    assert_eq!(summary_num(&r, "exit_code"), 1);
}

#[test]
fn waived_panic_propagation_is_suppressed_with_reason() {
    let r = run_check("violations", &[]);
    let suppressed = rows(&r, "suppressed");
    assert!(
        has(
            &suppressed,
            "panic-propagation",
            "crates/core/src/panicky.rs",
            23
        ),
        "{suppressed:?}"
    );
}

#[test]
fn call_graph_summary_counts_may_panic_public_fns() {
    let r = run_check("violations", &[]);
    let core = r
        .root
        .get("call_graph")
        .and_then(|g| g.get("core"))
        .expect("call_graph has a core entry");
    let num = |key: &str| core.get(key).and_then(Value::as_num).unwrap_or(-1.0) as i64;
    // risky + waived count: an allow waives the diagnostic, not the fact.
    // documented does not: a `# Panics` section settles the contract.
    assert_eq!(num("public_fns"), 4);
    assert_eq!(num("may_panic_strong"), 2);
    assert_eq!(num("may_panic_indexing"), 0);
}

#[test]
fn partial_cmp_chain_is_not_double_reported() {
    let r = run_check("violations", &[]);
    let d = rows(&r, "diagnostics");
    // float.rs line 8 holds the chained unwrap: the specific lint fires,
    // the generic `unwrap` lint must stay silent there.
    assert!(!has(&d, "unwrap", "crates/demo/src/float.rs", 8), "{d:?}");
}

// --- the clean counterparts: nothing fires ------------------------------

#[test]
fn clean_fixture_passes_with_zero_findings() {
    let r = run_check("clean", &[]);
    assert_eq!(r.code, 0, "stdout: {}\nstderr: {}", r.stdout, r.stderr);
    assert_eq!(summary_num(&r, "violations"), 0);
    assert_eq!(summary_num(&r, "warnings"), 0);
    assert!(rows(&r, "diagnostics").is_empty());
    // Every waiver is on record with its reason; look the float-eq one up
    // by position (the clean tree now carries several suppressions).
    let suppressed = rows(&r, "suppressed");
    assert!(has(&suppressed, "float-eq", "crates/demo/src/lib.rs", 20));
    let reason = r
        .root
        .get("suppressed")
        .and_then(Value::as_arr)
        .unwrap_or(&[])
        .iter()
        .find(|s| {
            s.get("lint").and_then(Value::as_str) == Some("float-eq")
                && s.get("file").and_then(Value::as_str) == Some("crates/demo/src/lib.rs")
        })
        .and_then(|s| s.get("reason"))
        .and_then(Value::as_str)
        .expect("suppression carries its reason");
    assert_eq!(reason, "zero is an exact sentinel here");
    // The dataflow-lint waivers from hygiene.rs ride along.
    assert!(has(
        &suppressed,
        "float-accum",
        "crates/demo/src/hygiene.rs",
        44
    ));
    assert!(has(
        &suppressed,
        "nondet-iteration",
        "crates/demo/src/hygiene.rs",
        53
    ));
    assert!(has(
        &suppressed,
        "wall-clock-in-lib",
        "crates/demo/src/hygiene.rs",
        63
    ));
    // The by-construction retry loop is on record with its reason.
    assert!(has(
        &suppressed,
        "unbounded-retry",
        "crates/demo/src/retry.rs",
        15
    ));
}

#[test]
fn obs_crate_is_exempt_from_wall_clock_in_lib() {
    // clean/crates/obs/src/timing.rs calls Instant::now(): the lint is
    // scoped out of the observability crate by design.
    let r = run_check("clean", &[]);
    let d = rows(&r, "diagnostics");
    assert!(
        d.iter().all(|(l, _, _, _)| l != "wall-clock-in-lib"),
        "{d:?}"
    );
}

#[test]
fn binaries_and_tests_are_exempt_from_panic_lints() {
    // clean/ contains an unwrap in a bin crate's main.rs and another in a
    // #[cfg(test)] module; neither may fire.
    let r = run_check("clean", &[]);
    let d = rows(&r, "diagnostics");
    assert!(d.iter().all(|(l, _, _, _)| l != "unwrap"), "{d:?}");
}

// --- warning promotion --------------------------------------------------

#[test]
fn advisory_indexing_passes_unless_warnings_are_denied() {
    let r = run_check("advisory", &[]);
    assert_eq!(r.code, 0, "stderr: {}", r.stderr);
    assert_eq!(summary_num(&r, "warnings"), 1);
    let d = rows(&r, "diagnostics");
    assert!(has(&d, "indexing", "crates/demo/src/lib.rs", 8));

    let denied = run_check("advisory", &["--deny-warnings"]);
    assert_eq!(denied.code, 1);
    assert_eq!(summary_num(&denied, "exit_code"), 1);
}

// --- baseline lifecycle -------------------------------------------------

#[test]
fn baselined_violations_pass_and_stale_entries_are_reported() {
    let r = run_check("baselined", &[]);
    assert_eq!(r.code, 0, "stdout: {}\nstderr: {}", r.stdout, r.stderr);
    assert_eq!(summary_num(&r, "violations"), 0);
    assert_eq!(summary_num(&r, "baselined"), 1);
    assert_eq!(summary_num(&r, "stale_baseline"), 1);
    let grand = rows(&r, "baselined");
    assert!(
        has(&grand, "unwrap", "crates/demo/src/lib.rs", 8),
        "{grand:?}"
    );
    let stale = rows(&r, "stale_baseline");
    assert!(
        has(&stale, "expect", "crates/demo/src/gone.rs", 3),
        "{stale:?}"
    );
}

#[test]
fn prune_baseline_rewrites_the_file_without_stale_entries() {
    // `--prune-baseline` rewrites check-baseline.json in place, so run it
    // against a throwaway copy of the baselined fixture.
    let scratch = Path::new(env!("CARGO_TARGET_TMPDIR")).join("prune-baseline");
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(scratch.join("crates/demo/src")).expect("mkdir scratch tree");
    for rel in ["check-baseline.json", "crates/demo/src/lib.rs"] {
        std::fs::copy(fixture("baselined").join(rel), scratch.join(rel)).expect("copy fixture");
    }

    let run = |extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_hetero-check"))
            .arg("--json")
            .arg("--root")
            .arg(&scratch)
            .args(extra)
            .output()
            .expect("hetero-check binary runs")
    };

    let pruned = run(&["--prune-baseline"]);
    assert_eq!(pruned.status.code(), Some(0));
    let stdout = String::from_utf8(pruned.stdout).expect("stdout is UTF-8");
    assert!(stdout.contains("pruned 1 stale"), "{stdout}");

    // The surviving entry still baselines the live unwrap; the stale
    // `gone.rs` entry is out of the file for good.
    let text = std::fs::read_to_string(scratch.join("check-baseline.json")).expect("read pruned");
    assert!(text.contains("crates/demo/src/lib.rs"), "{text}");
    assert!(!text.contains("gone.rs"), "{text}");
    let again = run(&[]);
    assert_eq!(again.status.code(), Some(0));
    let root =
        parse(&String::from_utf8(again.stdout).expect("stdout is UTF-8")).unwrap_or(Value::Null);
    let num = |key: &str| {
        root.get("summary")
            .and_then(|s| s.get(key))
            .and_then(Value::as_num)
            .unwrap_or(-1.0) as i64
    };
    assert_eq!(num("baselined"), 1);
    assert_eq!(num("stale_baseline"), 0);

    // A second prune is a no-op that leaves the file untouched.
    let noop = run(&["--prune-baseline"]);
    assert_eq!(noop.status.code(), Some(0));
    let stdout = String::from_utf8(noop.stdout).expect("stdout is UTF-8");
    assert!(stdout.contains("no stale entries"), "{stdout}");
}

// --- lint documentation -------------------------------------------------

#[test]
fn explain_prints_a_doc_page_for_every_catalogued_lint() {
    for lint in ["float-accum", "panic-propagation", "nondet-iteration"] {
        let r = run_check("clean", &["--explain", lint]);
        assert_eq!(r.code, 0, "stderr: {}", r.stderr);
        assert!(r.stdout.contains(lint), "{}", r.stdout);
        assert!(r.stdout.contains("Why"), "{}", r.stdout);
    }
}

#[test]
fn explain_unknown_lint_is_a_usage_error_listing_known_lints() {
    let r = run_check("clean", &["--explain", "no-such-lint"]);
    assert_eq!(r.code, 2);
    assert!(r.stderr.contains("unknown lint"), "{}", r.stderr);
    assert!(r.stderr.contains("float-accum"), "{}", r.stderr);
}

// --- IO and usage errors ------------------------------------------------

#[test]
fn malformed_baseline_is_a_usage_error() {
    let r = run_check("malformed-baseline", &[]);
    assert_eq!(r.code, 2, "stderr: {}", r.stderr);
    assert!(r.stderr.contains("check-baseline.json"), "{}", r.stderr);
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let r = run_check("clean", &["--no-such-flag"]);
    assert_eq!(r.code, 2);
    assert!(r.stderr.contains("unknown option"), "{}", r.stderr);
}

#[test]
fn missing_scan_path_is_an_error() {
    let r = run_check("clean", &["crates/nope"]);
    assert_eq!(r.code, 2, "stderr: {}", r.stderr);
    assert!(r.stderr.contains("no such path"), "{}", r.stderr);
}

// --- scoped scans -------------------------------------------------------

#[test]
fn explicit_paths_narrow_the_scan() {
    // Scanning only the float file must surface its two findings and
    // nothing from the rest of the violations tree.
    let r = run_check("violations", &["crates/demo/src/float.rs"]);
    assert_eq!(r.code, 1);
    assert_eq!(summary_num(&r, "files_scanned"), 1);
    let d = rows(&r, "diagnostics");
    assert_eq!(d.len(), 2, "{d:?}");
    assert!(has(&d, "float-eq", "crates/demo/src/float.rs", 4));
    assert!(has(&d, "partial-cmp-unwrap", "crates/demo/src/float.rs", 8));
}
