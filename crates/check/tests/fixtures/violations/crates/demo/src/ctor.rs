//! Constructor-discipline violation: a struct literal outside the
//! defining module.

pub fn build() -> Profile {
    Profile { rhos: inner() }
}
