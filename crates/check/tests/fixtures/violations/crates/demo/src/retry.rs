//! Retry loops without compile-visible bounds.

/// Fires: the loop retransmits until a data-dependent break.
pub fn drain(ok: &mut bool) {
    loop {
        retransmit();
        if *ok {
            break;
        }
    }
}

/// Silent: the condition carries the remaining budget.
pub fn drain_bounded(mut retries_left: u32) {
    while retries_left > 0 {
        retransmit();
        retries_left -= 1;
    }
}

fn retransmit() {}
