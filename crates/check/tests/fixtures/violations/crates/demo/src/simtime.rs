//! Panicking simulation-time construction outside the simulator crate.

pub fn stamp(t: f64) -> SimTime {
    SimTime::new(t)
}

pub fn checked(t: f64) -> Result<SimTime, NonFiniteTime> {
    SimTime::try_new(t)
}
