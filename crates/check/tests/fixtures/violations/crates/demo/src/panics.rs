//! Panic-freedom violations, plus one advisory indexing site.

pub fn first(v: &[f64], x: Option<f64>, y: Option<f64>) -> f64 {
    let a = x.unwrap();
    let b = y.expect("y is set");
    if v.is_empty() {
        panic!("empty input");
    }
    a + b + v[0]
}
