//! Float-hygiene violations.

pub fn eq(x: f64) -> bool {
    x == 1.0
}

pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
