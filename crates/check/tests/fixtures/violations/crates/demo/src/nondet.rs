//! Nondeterministic hash iteration feeding order-sensitive work.

use std::collections::HashMap;

/// Fires: float accumulation over hash iteration order.
pub fn total(weights: &HashMap<String, f64>) -> f64 {
    let mut acc = 0.0;
    for (_k, v) in weights.iter() {
        acc += v;
    }
    acc
}

/// Fires: hash values chained straight into a float reduction.
pub fn chained(weights: &HashMap<String, f64>) -> f64 {
    let total: f64 = weights.values().sum();
    total
}
