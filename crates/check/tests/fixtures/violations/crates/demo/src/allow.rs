//! An allow comment with no justification: flagged, and the finding it
//! tried to waive still stands.

pub fn f(x: Option<u8>) -> u8 {
    // hetero-check: allow(unwrap)
    x.unwrap()
}
