//! Metric recording: one registered name, one rogue name.

/// Silent: `demo.registered` is in the fixture REGISTRY.
pub fn good(n: u64) {
    hetero_obs::count("demo.registered", n);
}

/// Fires: `demo.rogue` is not registered.
pub fn bad(n: u64) {
    hetero_obs::count("demo.rogue", n);
}
