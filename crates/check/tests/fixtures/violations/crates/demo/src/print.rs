//! Stdio printing from library code.

pub fn report(x: f64) {
    println!("x = {x}");
    eprintln!("warning: {x}");
}
