//! Library crate missing both policy headers.

pub fn noop() {}
