//! Strong atomic ordering without a happens-before justification.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared counter.
pub static COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Fires: `SeqCst` with no `// ordering:` comment.
pub fn bump() -> usize {
    COUNTER.fetch_add(1, Ordering::SeqCst)
}
