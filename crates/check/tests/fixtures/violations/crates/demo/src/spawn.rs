//! Ad-hoc thread creation outside the pool crate.

pub fn fan_out() {
    std::thread::spawn(|| {});
    crossbeam::scope(|_s| {}).ok();
}

pub fn probe() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).ok().unwrap_or(1)
}
