//! Wall-clock read in library code.

/// Fires: libraries must take time as data.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
