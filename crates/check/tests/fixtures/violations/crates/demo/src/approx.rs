//! Approximate math planted outside the certified fast-kernel modules.

/// Fires three times: a reciprocal-approximation call, a Newton
/// refinement step, and a raw SIMD intrinsic — none are legal here.
pub fn inverse(d: f64) -> f64 {
    let seed = hetero_simd::rcp_portable(d);
    let refined = crate::newton_step(seed, d);
    unsafe { core::arch::x86_64::_mm512_rcp14_pd(refined) }
}
