//! Mini metric registry for the fixture workspace: the names the
//! counter-name-discipline lint accepts.

/// Every metric name the fixture recorders may use.
pub const REGISTRY: &[&str] = &["demo.registered"];
