//! Formula module whose public item forgot its citation.

/// Computes a thing.
pub fn unanchored(v: &[f64]) -> f64 {
    v.iter().sum()
}
