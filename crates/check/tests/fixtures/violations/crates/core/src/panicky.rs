//! May-panic public API without a `# Panics` doc section.

fn helper(v: &[u64]) -> u64 {
    v.first().copied().unwrap()
}

/// Fires: may panic through `helper`, and nothing documents that.
pub fn risky(v: &[u64]) -> u64 {
    helper(v)
}

/// Silent: the `# Panics` section documents the contract.
///
/// # Panics
///
/// Panics when `v` is empty.
pub fn documented(v: &[u64]) -> u64 {
    helper(v)
}

/// Waived: the allow converts the finding into a suppression.
// hetero-check: allow(panic-propagation) — fixture: panic contract owned by the harness
pub fn waived(v: &[u64]) -> u64 {
    helper(v)
}
