//! Content is irrelevant; the baseline next door is garbage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
