//! Binary crate: panics are acceptable at the process boundary, so the
//! unwrap below must not fire.

fn main() {
    let arg = std::env::args().nth(1).unwrap();
    println!("{arg}");
}
