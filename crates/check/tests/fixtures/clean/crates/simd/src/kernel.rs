//! The certified home of approximation: `crates/simd` is designated,
//! so reciprocal seeds and Newton refinement stay silent here.

/// Magic bit-trick seed for the reciprocal approximation.
pub const RCP_MAGIC: u64 = 0x7FDE_6238_22FC_16E6;

/// Silent: a reciprocal seed plus one Newton step is exactly what this
/// module exists to certify.
pub fn rcp_newton(d: f64) -> f64 {
    let mut r = f64::from_bits(RCP_MAGIC.wrapping_sub(d.to_bits()));
    r *= 2.0 - d * r;
    r
}
