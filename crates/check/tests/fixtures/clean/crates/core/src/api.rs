//! Call-graph counterparts: contained panics never reach a public API
//! undocumented.

fn checked(v: &[u64]) -> Option<u64> {
    v.first().copied()
}

/// No panic path anywhere: the call graph stays quiet.
pub fn safe_total(v: &[u64]) -> u64 {
    checked(v).unwrap_or(0)
}

fn contained(v: &[u64]) -> u64 {
    // hetero-check: allow(unwrap) — fixture: every caller checks emptiness first
    v.first().copied().unwrap()
}

/// The waived unwrap above is not a may-panic fact: silent.
pub fn guarded(v: &[u64]) -> u64 {
    if v.is_empty() {
        return 0;
    }
    contained(v)
}
