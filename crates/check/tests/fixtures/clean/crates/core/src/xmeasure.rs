//! Anchored formula module: public items cite the paper, sums are
//! compensated.

/// The X-measure (Theorem 1, §2.2).
pub fn anchored(v: &[f64]) -> f64 {
    kahan_sum(v.iter().copied())
}

/// Crate-internal helper; anchor not required.
pub(crate) fn helper() {}
