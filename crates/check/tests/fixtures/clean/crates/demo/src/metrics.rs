//! Metric recording through a registered name stays silent.

/// Records a registered metric: counter-name-discipline must not fire.
pub fn good(n: u64) {
    hetero_obs::count("demo.registered", n);
}
