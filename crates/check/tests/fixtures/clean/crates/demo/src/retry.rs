//! Bounded retry loops: the budget is visible in the loop itself.

/// Silent: `max_rounds` bounds the retransmit loop.
pub fn drain(mut max_rounds: u32) {
    while max_rounds > 0 {
        retransmit();
        max_rounds -= 1;
    }
}

/// Silent under a justified allow: the queue drains by construction,
/// but the bound is not visible to the token walk.
pub fn pump(mut pending: u32) {
    // hetero-check: allow(unbounded-retry) — pending strictly decreases each round
    while pending > 0 {
        retransmit();
        pending -= 1;
    }
}

fn retransmit() {}
