//! Constructors, not literals.

/// Builds through the validated constructor.
pub fn build(rhos: Vec<f64>) -> Result<Profile, ProfileError> {
    Profile::from_unsorted(rhos)
}
