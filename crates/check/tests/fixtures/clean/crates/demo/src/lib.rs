//! Clean library crate: every lint has its non-firing counterpart here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Compares within a named tolerance instead of exact equality.
pub fn close(x: f64, y: f64) -> bool {
    const EPS: f64 = 1e-12;
    (x - y).abs() < EPS
}

/// Sorts with the IEEE total order, no partial_cmp unwrapping.
pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}

/// A documented exact sentinel, waived with a reason.
pub fn is_zero(x: f64) -> bool {
    // hetero-check: allow(float-eq) — zero is an exact sentinel here
    x == 0.0
}

/// Bounds-checked access instead of indexing.
pub fn head(v: &[f64]) -> Option<f64> {
    v.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let x: Option<u8> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
