//! Disciplined counterparts and justified waivers for the dataflow
//! lints: nothing in this file may fire.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Event counter for the ordering demo below.
pub static TICKS: AtomicUsize = AtomicUsize::new(0);

/// Integer accumulation is order-free: never fires float-accum.
pub fn count_nonzero(xs: &[u64]) -> usize {
    let mut n = 0usize;
    for x in xs {
        if *x != 0 {
            n += 1;
        }
    }
    n
}

/// Ordered iteration is deterministic: BTreeMap never fires.
pub fn ordered_total(weights: &BTreeMap<String, u64>) -> u64 {
    let mut acc = 0u64;
    for (_k, v) in weights.iter() {
        acc += v;
    }
    acc
}

/// Order-insensitive hash iteration stays silent.
pub fn hash_count(m: &HashMap<u64, u64>) -> usize {
    let mut n = 0usize;
    for (_k, _v) in m.iter() {
        n += 1;
    }
    n
}

/// A waived float accumulation, with its reason on record.
pub fn residual(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        // hetero-check: allow(float-accum) — fixture: compensated upstream
        acc += x;
    }
    acc
}

/// A waived hash iteration: the keys are sorted right below.
pub fn hash_keys(m: &HashMap<u64, u64>) -> Vec<u64> {
    let mut keys = Vec::new();
    // hetero-check: allow(nondet-iteration) — fixture: sorted immediately below
    for (k, _v) in m.iter() {
        keys.push(*k);
    }
    keys.sort_unstable();
    keys
}

/// A waived wall-clock read.
pub fn stamp_micros() -> u128 {
    // hetero-check: allow(wall-clock-in-lib) — fixture: coarse log timestamp only
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_micros(),
        Err(_) => 0,
    }
}

/// `Relaxed` needs no comment; the release store documents its edge.
pub fn tick() {
    let _ = TICKS.load(Ordering::Relaxed);
    // ordering: fixture — release publishes the counter to acquire readers
    TICKS.store(1, Ordering::Release);
}
