//! Wall-clock reads live in obs by design: exempt from
//! wall-clock-in-lib.

/// The current instant, for spans.
pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}
