//! Mini metric registry for the clean fixture.

/// Every metric name the clean fixture records.
pub const REGISTRY: &[&str] = &["demo.registered"];
