//! Legacy crate with one grandfathered unwrap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Legacy behavior kept alive during the burn-down.
pub fn legacy(x: Option<u8>) -> u8 {
    x.unwrap()
}
