//! A crate whose only finding is the advisory indexing lint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Reads the head element.
pub fn head(v: &[f64]) -> f64 {
    v[0]
}
