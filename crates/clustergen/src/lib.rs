//! # hetero-clustergen — constrained random heterogeneity profiles
//!
//! The Section 4.3 experiments need *pairs* of random `n`-computer
//! clusters that share the same mean speed while differing in variance.
//! The paper only sketches its generator (the details are in the
//! unavailable companion paper), so this crate defines a documented,
//! reproducible one (DESIGN.md substitution S3):
//!
//! 1. draw raw speeds in `[lo, 1]` from a configurable [`Shape`]
//!    (uniform, bimodal, or mean-concentrated — the shapes produce small,
//!    large, and tiny variances respectively, giving the threshold
//!    experiment its range of variance gaps);
//! 2. project the second profile onto the first's mean by iterative
//!    shift-and-clamp, finishing with an exact residual distribution
//!    ([`adjust_to_mean`]);
//! 3. reject and retry if the projection cannot land inside `[lo, 1]ⁿ`.
//!
//! Everything is driven by explicit [`rand::rngs::StdRng`] seeds; combined
//! with `hetero_par::seed::derive`, parallel sweeps are reproducible
//! independent of thread count.
//!
//! ```
//! use hetero_clustergen::{rng_from_seed, EqualMeanPairGen, GenConfig, Shape};
//!
//! let mut rng = rng_from_seed(7);
//! let gen = EqualMeanPairGen::new(GenConfig::new(16), Shape::Uniform, Shape::Bimodal);
//! let pair = gen.sample(&mut rng).expect("projection feasible");
//! assert!((pair.p1.mean() - pair.p2.mean()).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hetero_core::numeric::kahan_sum;
use hetero_core::xbatch::ProfileBatch;
use hetero_core::Profile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the crate's standard RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Size and speed-range of generated clusters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Number of computers.
    pub n: usize,
    /// Smallest permitted ρ (fastest speed). Must satisfy `0 < lo < 1`.
    pub lo: f64,
}

impl GenConfig {
    /// Config with the default speed floor `lo = 0.01` (a 100× speed range,
    /// comfortably covering the paper's examples).
    pub fn new(n: usize) -> Self {
        GenConfig { n, lo: 0.01 }
    }

    /// Overrides the speed floor.
    pub fn with_lo(mut self, lo: f64) -> Self {
        assert!(lo > 0.0 && lo < 1.0, "lo must lie in (0, 1)");
        self.lo = lo;
        self
    }
}

/// Distribution family for raw speed draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// i.i.d. uniform on `[lo, 1]` — moderate variance.
    Uniform,
    /// Each speed near `lo` or near `1` (±10 % of the range) with equal
    /// probability — variance close to its maximum for the range.
    Bimodal,
    /// Speeds within ±10 % of the range's midpoint — variance near zero.
    Concentrated,
}

/// Draws one vector of raw speeds (unsorted, not mean-adjusted).
pub fn sample_speeds(rng: &mut StdRng, cfg: GenConfig, shape: Shape) -> Vec<f64> {
    let mut out = Vec::with_capacity(cfg.n);
    sample_speeds_into(rng, cfg, shape, &mut out);
    out
}

/// [`sample_speeds`] into a caller-owned buffer (cleared first), drawing
/// exactly the same RNG stream — the allocation-free primitive the batch
/// loaders are built on.
pub fn sample_speeds_into(rng: &mut StdRng, cfg: GenConfig, shape: Shape, out: &mut Vec<f64>) {
    assert!(cfg.n >= 1, "cluster must have at least one computer");
    let width = 1.0 - cfg.lo;
    out.clear();
    out.reserve(cfg.n);
    for _ in 0..cfg.n {
        out.push(match shape {
            Shape::Uniform => rng.random_range(cfg.lo..=1.0),
            Shape::Bimodal => {
                let jitter = rng.random_range(0.0..=0.1) * width;
                if rng.random_bool(0.5) {
                    cfg.lo + jitter
                } else {
                    1.0 - jitter
                }
            }
            Shape::Concentrated => {
                let mid = cfg.lo + 0.5 * width;
                mid + rng.random_range(-0.1..=0.1) * width
            }
        });
    }
}

/// Draws one random [`Profile`] (sorted slowest-first).
pub fn random_profile(rng: &mut StdRng, cfg: GenConfig, shape: Shape) -> Profile {
    Profile::from_unsorted(sample_speeds(rng, cfg, shape))
        // hetero-check: allow(expect) — sample_speeds clamps every draw into [cfg.lo, 1] with cfg.lo > 0
        .expect("sampled speeds are positive and finite")
}

/// Projects `speeds` to have exactly the `target` mean while staying in
/// `[lo, 1]`, by iterative shift-and-clamp plus an exact residual pass.
/// Returns `None` when the target is outside `[lo, 1]` (unreachable).
pub fn adjust_to_mean(mut speeds: Vec<f64>, target: f64, lo: f64) -> Option<Vec<f64>> {
    adjust_to_mean_in_place(&mut speeds, target, lo).then_some(speeds)
}

/// [`adjust_to_mean`] operating in place: same arithmetic, no move.
/// Returns `false` (leaving `speeds` partially shifted — resample them)
/// when the target mean is unreachable.
pub fn adjust_to_mean_in_place(speeds: &mut [f64], target: f64, lo: f64) -> bool {
    let n = speeds.len() as f64;
    if speeds.is_empty() || !(lo..=1.0).contains(&target) {
        return false;
    }
    // Phase 1: shift everything by the mean error, clamping to the box.
    // Each iteration strictly reduces |error| unless all entries are
    // pinned at the same bound, which cannot happen for a reachable target.
    for _ in 0..64 {
        // hetero-check: allow(float-accum) — mean over a fixed-order slice used only as a projection target; not on a result path
        let mean = speeds.iter().sum::<f64>() / n;
        let err = target - mean;
        if err.abs() < 1e-12 {
            break;
        }
        for s in &mut *speeds {
            *s = (*s + err).clamp(lo, 1.0);
        }
    }
    // Phase 2: distribute the (tiny) remaining residual over entries with
    // slack, making the mean exact to f64 working precision.
    // hetero-check: allow(float-accum) — residual of a fixed-order slice sum; the distribution loop below zeroes it regardless of rounding
    let mut residual = target * n - speeds.iter().sum::<f64>();
    for s in &mut *speeds {
        if residual.abs() < 1e-15 {
            break;
        }
        let room = if residual > 0.0 { 1.0 - *s } else { lo - *s };
        let step = residual.clamp(room.min(0.0), room.max(0.0));
        // hetero-check: allow(float-accum) — sequential residual hand-off IS the algorithm; the entry order is pinned by the slice
        *s += step;
        // hetero-check: allow(float-accum) — same pinned-order residual walk as the line above
        residual -= step;
    }
    // A residual that refuses to distribute means a pathological box;
    // the caller should resample.
    residual.abs() <= 1e-9
}

/// A pair of equal-mean profiles plus their measured statistics.
#[derive(Debug, Clone)]
pub struct EqualMeanPair {
    /// First profile.
    pub p1: Profile,
    /// Second profile (mean-matched to the first).
    pub p2: Profile,
    /// The shared mean speed.
    pub mean: f64,
    /// `VAR(p1)`.
    pub var1: f64,
    /// `VAR(p2)`.
    pub var2: f64,
}

impl EqualMeanPair {
    /// Absolute variance gap `|VAR(p1) − VAR(p2)|`.
    pub fn variance_gap(&self) -> f64 {
        (self.var1 - self.var2).abs()
    }
}

/// Generator of equal-mean profile pairs with chosen shapes for each side.
///
/// Drawing `p1` from one shape and `p2` from another controls the typical
/// variance gap: `(Concentrated, Bimodal)` produces the large gaps probed
/// by the threshold experiment, `(Uniform, Uniform)` the small ones where
/// the variance predictor starts to fail.
#[derive(Debug, Clone, Copy)]
pub struct EqualMeanPairGen {
    cfg: GenConfig,
    shape1: Shape,
    shape2: Shape,
}

impl EqualMeanPairGen {
    /// New generator.
    pub fn new(cfg: GenConfig, shape1: Shape, shape2: Shape) -> Self {
        EqualMeanPairGen {
            cfg,
            shape1,
            shape2,
        }
    }

    /// The configuration.
    pub fn config(&self) -> GenConfig {
        self.cfg
    }

    /// Draws one pair; `None` when 32 successive projections failed
    /// (practically unreachable for sane configs).
    pub fn sample(&self, rng: &mut StdRng) -> Option<EqualMeanPair> {
        for _ in 0..32 {
            let raw1 = sample_speeds(rng, self.cfg, self.shape1);
            // hetero-check: allow(float-accum) — mean of a freshly drawn fixed-order sample; golden profile outputs pin this exact sum order
            let mean = raw1.iter().sum::<f64>() / raw1.len() as f64;
            let raw2 = sample_speeds(rng, self.cfg, self.shape2);
            let Some(adj2) = adjust_to_mean(raw2, mean, self.cfg.lo) else {
                continue;
            };
            // hetero-check: allow(expect) — sample_speeds keeps draws in [cfg.lo, 1], cfg.lo > 0
            let p1 = Profile::from_unsorted(raw1).expect("valid speeds");
            // hetero-check: allow(expect) — adjust_to_mean clamps into [lo, 1] and returned Some, so speeds are valid
            let p2 = Profile::from_unsorted(adj2).expect("valid speeds");
            let (var1, var2) = (p1.variance(), p2.variance());
            return Some(EqualMeanPair {
                p1,
                p2,
                mean,
                var1,
                var2,
            });
        }
        None
    }
}

/// Statistics of one pair drawn by [`PairBatcher::sample_into`] — the
/// same numbers [`EqualMeanPair`] carries, without the two `Profile`
/// allocations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairSample {
    /// The shared mean speed.
    pub mean: f64,
    /// `VAR(p1)`.
    pub var1: f64,
    /// `VAR(p2)`.
    pub var2: f64,
}

impl PairSample {
    /// Absolute variance gap `|VAR(p1) − VAR(p2)|`.
    pub fn variance_gap(&self) -> f64 {
        (self.var1 - self.var2).abs()
    }
}

/// Allocation-free bulk loader of equal-mean pairs into a
/// [`ProfileBatch`].
///
/// Holds the raw-draw scratch buffers that [`EqualMeanPairGen::sample`]
/// would allocate per trial, and pushes each accepted pair's *sorted*
/// ρ-rows directly into the structure-of-arrays arena. The RNG draw
/// order, the retry policy, the plain-sum target mean, the slowest-first
/// `total_cmp` sort, and the compensated mean/variance are each the
/// exact operation sequence of the `Profile`-returning path, so a
/// batched sweep consumes the same stream and computes bit-identical
/// statistics (pinned by a test).
#[derive(Debug, Clone, Default)]
pub struct PairBatcher {
    raw1: Vec<f64>,
    raw2: Vec<f64>,
}

impl PairBatcher {
    /// A batcher with empty scratch (grown on first use, reused after).
    pub fn new() -> Self {
        PairBatcher::default()
    }

    /// Draws one pair from `gen`, appending its two sorted profiles to
    /// `batch` and returning their statistics; `None` (nothing appended)
    /// when 32 successive projections failed. Mirrors
    /// [`EqualMeanPairGen::sample`] draw for draw.
    pub fn sample_into(
        &mut self,
        gen: &EqualMeanPairGen,
        rng: &mut StdRng,
        batch: &mut ProfileBatch,
    ) -> Option<PairSample> {
        let cfg = gen.cfg;
        for _ in 0..32 {
            sample_speeds_into(rng, cfg, gen.shape1, &mut self.raw1);
            // hetero-check: allow(float-accum) — must match the allocating path's sum bit-for-bit, same fixed slice order
            let mean = self.raw1.iter().sum::<f64>() / self.raw1.len() as f64;
            sample_speeds_into(rng, cfg, gen.shape2, &mut self.raw2);
            if !adjust_to_mean_in_place(&mut self.raw2, mean, cfg.lo) {
                continue;
            }
            // Sort exactly as Profile::from_unsorted does, then take the
            // statistics in sorted order exactly as Profile::mean/variance
            // do — bit-identical to building the profiles.
            self.raw1.sort_by(|a, b| b.total_cmp(a));
            self.raw2.sort_by(|a, b| b.total_cmp(a));
            let (var1, var2) = (variance_of(&self.raw1), variance_of(&self.raw2));
            batch.push(&self.raw1);
            batch.push(&self.raw2);
            return Some(PairSample { mean, var1, var2 });
        }
        None
    }
}

/// [`Profile::mean`]'s operation sequence on a raw sorted slice.
fn mean_of(rhos: &[f64]) -> f64 {
    kahan_sum(rhos.iter().copied()) / rhos.len() as f64
}

/// [`Profile::variance`]'s operation sequence on a raw sorted slice.
fn variance_of(rhos: &[f64]) -> f64 {
    let mean = mean_of(rhos);
    kahan_sum(rhos.iter().map(|r| (r - mean) * (r - mean))) / rhos.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let cfg = GenConfig::new(8);
        let a = sample_speeds(&mut rng_from_seed(99), cfg, Shape::Uniform);
        let b = sample_speeds(&mut rng_from_seed(99), cfg, Shape::Uniform);
        assert_eq!(a, b);
        let c = sample_speeds(&mut rng_from_seed(100), cfg, Shape::Uniform);
        assert_ne!(a, c);
    }

    #[test]
    fn samples_respect_the_box() {
        let cfg = GenConfig::new(200).with_lo(0.05);
        let mut rng = rng_from_seed(1);
        for shape in [Shape::Uniform, Shape::Bimodal, Shape::Concentrated] {
            for s in sample_speeds(&mut rng, cfg, shape) {
                assert!((0.05..=1.0).contains(&s), "{shape:?} produced {s}");
            }
        }
    }

    #[test]
    fn shapes_order_variances() {
        let cfg = GenConfig::new(500);
        let mut rng = rng_from_seed(2);
        let mut var = |shape| {
            Profile::from_unsorted(sample_speeds(&mut rng, cfg, shape))
                .unwrap()
                .variance()
        };
        let (vc, vu, vb) = (
            var(Shape::Concentrated),
            var(Shape::Uniform),
            var(Shape::Bimodal),
        );
        assert!(vc < vu && vu < vb, "{vc} < {vu} < {vb} violated");
    }

    #[test]
    fn adjust_to_mean_hits_target_exactly() {
        let speeds = vec![0.2, 0.9, 0.5, 0.7];
        let out = adjust_to_mean(speeds, 0.4, 0.01).unwrap();
        let mean = out.iter().sum::<f64>() / 4.0;
        assert!((mean - 0.4).abs() < 1e-12);
        for s in out {
            assert!((0.01..=1.0).contains(&s));
        }
    }

    #[test]
    fn adjust_to_mean_rejects_unreachable_targets() {
        assert!(adjust_to_mean(vec![0.5, 0.5], 1.5, 0.01).is_none());
        assert!(adjust_to_mean(vec![0.5, 0.5], 0.001, 0.01).is_none());
        assert!(adjust_to_mean(vec![], 0.5, 0.01).is_none());
    }

    #[test]
    fn adjust_to_mean_handles_extreme_targets_in_range() {
        // Target at the very top of the box pins everything at 1.
        let out = adjust_to_mean(vec![0.3, 0.8], 1.0, 0.01).unwrap();
        assert_eq!(out, vec![1.0, 1.0]);
    }

    #[test]
    fn equal_mean_pairs_share_mean() {
        let gen = EqualMeanPairGen::new(GenConfig::new(32), Shape::Uniform, Shape::Bimodal);
        let mut rng = rng_from_seed(3);
        for _ in 0..50 {
            let pair = gen.sample(&mut rng).expect("feasible");
            assert!((pair.p1.mean() - pair.p2.mean()).abs() < 1e-11);
            assert!((pair.p1.mean() - pair.mean).abs() < 1e-11);
            assert_eq!(pair.p1.n(), 32);
            assert_eq!(pair.p2.n(), 32);
        }
    }

    #[test]
    fn shape_pairing_controls_variance_gap() {
        let mut rng = rng_from_seed(4);
        let big = EqualMeanPairGen::new(GenConfig::new(64), Shape::Concentrated, Shape::Bimodal);
        let small = EqualMeanPairGen::new(GenConfig::new(64), Shape::Uniform, Shape::Uniform);
        let mut big_gaps = 0.0;
        let mut small_gaps = 0.0;
        for _ in 0..20 {
            big_gaps += big.sample(&mut rng).unwrap().variance_gap();
            small_gaps += small.sample(&mut rng).unwrap().variance_gap();
        }
        assert!(
            big_gaps > 4.0 * small_gaps,
            "Concentrated/Bimodal should give much larger gaps: {big_gaps} vs {small_gaps}"
        );
    }

    #[test]
    fn pair_batcher_is_bit_identical_to_the_profile_path() {
        // Same seed through both paths: the arena rows must equal the
        // sorted profiles bit for bit, the statistics likewise, and the
        // two RNGs must stay in lockstep across many trials.
        for (s1, s2) in [
            (Shape::Uniform, Shape::Bimodal),
            (Shape::Concentrated, Shape::Bimodal),
            (Shape::Uniform, Shape::Uniform),
        ] {
            let gen = EqualMeanPairGen::new(GenConfig::new(24), s1, s2);
            let mut rng_a = rng_from_seed(77);
            let mut rng_b = rng_from_seed(77);
            let mut batcher = PairBatcher::new();
            let mut batch = ProfileBatch::new();
            for trial in 0..40 {
                let pair = gen.sample(&mut rng_a).expect("feasible");
                let stats = batcher
                    .sample_into(&gen, &mut rng_b, &mut batch)
                    .expect("feasible");
                let row1 = batch.rhos_of(batch.len() - 2);
                let row2 = batch.rhos_of(batch.len() - 1);
                assert_eq!(row1, pair.p1.rhos(), "trial {trial}");
                assert_eq!(row2, pair.p2.rhos(), "trial {trial}");
                assert_eq!(stats.mean.to_bits(), pair.mean.to_bits());
                assert_eq!(stats.var1.to_bits(), pair.var1.to_bits());
                assert_eq!(stats.var2.to_bits(), pair.var2.to_bits());
            }
        }
    }

    #[test]
    fn variance_gap_is_symmetric() {
        let pair = EqualMeanPair {
            p1: Profile::homogeneous(2, 0.5).unwrap(),
            p2: Profile::new(vec![0.9, 0.1]).unwrap(),
            mean: 0.5,
            var1: 0.0,
            var2: 0.16,
        };
        assert!((pair.variance_gap() - 0.16).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "lo must lie")]
    fn bad_lo_panics() {
        let _ = GenConfig::new(4).with_lo(1.5);
    }
}
