//! # hetero-faults — deterministic fault injection for the CEP simulator
//!
//! The paper's analysis (and the `hetero-protocol` executor that replays
//! it) assumes every computer runs at its advertised ρ and every message
//! transits cleanly. Real clusters crash, straggle, and drop messages —
//! the regime the related work on coded computation and work exchange
//! designs for. This crate describes such failures as *data*:
//!
//! * [`FaultSpec`] — one validated fault: a permanent worker crash, a
//!   multiplicative slowdown over an interval, a transient channel-rate
//!   perturbation, or result-message loss requiring retransmission.
//! * [`FaultPlan`] — an ordered set of specs with O(specs) point queries
//!   (`crash_time`, `slowdown_factor`, `channel_factor`, `result_losses`)
//!   shaped so the *fault-free* path performs zero extra float
//!   operations — which is what lets `execute_with_faults` with an empty
//!   plan stay bit-identical to the pristine executor.
//! * [`FaultConfig`] / [`FaultPlan::sample`] — seeded random plan
//!   generation (crash probability × straggler severity × loss rate),
//!   deterministic under a `u64` seed and fingerprintable
//!   ([`FaultPlan::fingerprint`]) for reproducibility manifests.
//!
//! The plan is pure description: the DES executor in `hetero-protocol`
//! compiles it into events and reacts to it; nothing here touches the
//! simulation engine.
//!
//! ```
//! use hetero_faults::{FaultPlan, FaultSpec};
//!
//! let plan = FaultPlan::new(vec![
//!     FaultSpec::Crash { worker: 1, at: 250.0 },
//!     FaultSpec::Slowdown { worker: 0, factor: 3.0, from: 0.0, until: 600.0 },
//! ])
//! .unwrap();
//! assert_eq!(plan.crash_time(1), Some(250.0));
//! assert_eq!(plan.slowdown_factor(0, 100.0), Some(3.0));
//! assert_eq!(plan.slowdown_factor(1, 100.0), None); // no-fault path: no float ops
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod plan;
mod spec;

pub use json::PlanJsonError;
pub use plan::{FaultConfig, FaultPlan};
pub use spec::{FaultError, FaultSpec};
