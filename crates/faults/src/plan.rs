//! Validated fault plans: ordered spec sets with point queries and
//! deterministic sampling.

use rand::{Rng, SeedableRng};

use crate::spec::{FaultError, FaultSpec};

/// An ordered, validated collection of faults for one execution.
///
/// Queries are O(specs) scans — plans are tiny (a handful of faults per
/// run) and the executor calls them at event boundaries, not per float op.
/// Every query is shaped so that the *absence* of a fault costs zero
/// floating-point operations: `slowdown_factor`/`channel_factor` return
/// `None` rather than a neutral `1.0`, and `crash_time` returns `None`
/// rather than `f64::INFINITY`. This is what keeps the empty-plan
/// execution bit-identical to the fault-free executor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Builds a plan from specs, validating each one.
    pub fn new(specs: Vec<FaultSpec>) -> Result<Self, FaultError> {
        for spec in &specs {
            spec.validate()?;
        }
        Ok(FaultPlan { specs })
    }

    /// The fault-free plan.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The validated specs, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Earliest crash time for `worker`, or `None` if it never crashes.
    pub fn crash_time(&self, worker: usize) -> Option<f64> {
        let mut earliest: Option<f64> = None;
        for spec in &self.specs {
            if let FaultSpec::Crash { worker: w, at } = *spec {
                if w == worker && earliest.is_none_or(|t| at < t) {
                    earliest = Some(at);
                }
            }
        }
        earliest
    }

    /// Combined slowdown multiplier for a phase of `worker` starting at
    /// `at`, or `None` when no slowdown window is active (so the
    /// fault-free path multiplies nothing).
    pub fn slowdown_factor(&self, worker: usize, at: f64) -> Option<f64> {
        let mut combined: Option<f64> = None;
        for spec in &self.specs {
            if let FaultSpec::Slowdown {
                worker: w,
                factor,
                from,
                until,
            } = *spec
            {
                if w == worker && from <= at && at < until {
                    combined = Some(match combined {
                        Some(c) => c * factor,
                        None => factor,
                    });
                }
            }
        }
        combined
    }

    /// Combined channel-rate multiplier for a transit starting at `at`,
    /// or `None` when the channel is unperturbed.
    pub fn channel_factor(&self, at: f64) -> Option<f64> {
        let mut combined: Option<f64> = None;
        for spec in &self.specs {
            if let FaultSpec::ChannelJitter {
                factor,
                from,
                until,
            } = *spec
            {
                if from <= at && at < until {
                    combined = Some(match combined {
                        Some(c) => c * factor,
                        None => factor,
                    });
                }
            }
        }
        combined
    }

    /// Total result messages from `worker` that will be lost before one
    /// gets through (zero for unaffected workers).
    pub fn result_losses(&self, worker: usize) -> u32 {
        let mut total = 0u32;
        for spec in &self.specs {
            if let FaultSpec::ResultLoss { worker: w, count } = *spec {
                if w == worker {
                    total = total.saturating_add(count);
                }
            }
        }
        total
    }

    /// Order-sensitive content hash of the plan.
    ///
    /// Chains the SplitMix64 finalizer over a per-spec tag and the raw
    /// bits of every field, so two plans fingerprint equal iff their spec
    /// sequences are field-for-field identical (`-0.0` vs `0.0` and NaN
    /// payloads are distinguished — fingerprints identify *descriptions*,
    /// not behaviours). Stable across runs, platforms, and thread counts;
    /// intended for reproducibility manifests next to the RNG seed.
    pub fn fingerprint(&self) -> u64 {
        use hetero_par::seed::mix;
        let mut h = mix(0xFA17_5EED ^ self.specs.len() as u64);
        let absorb = |h: &mut u64, v: u64| *h = mix(*h ^ v);
        for spec in &self.specs {
            match *spec {
                FaultSpec::Crash { worker, at } => {
                    absorb(&mut h, 1);
                    absorb(&mut h, worker as u64);
                    absorb(&mut h, at.to_bits());
                }
                FaultSpec::Slowdown {
                    worker,
                    factor,
                    from,
                    until,
                } => {
                    absorb(&mut h, 2);
                    absorb(&mut h, worker as u64);
                    absorb(&mut h, factor.to_bits());
                    absorb(&mut h, from.to_bits());
                    absorb(&mut h, until.to_bits());
                }
                FaultSpec::ChannelJitter {
                    factor,
                    from,
                    until,
                } => {
                    absorb(&mut h, 3);
                    absorb(&mut h, factor.to_bits());
                    absorb(&mut h, from.to_bits());
                    absorb(&mut h, until.to_bits());
                }
                FaultSpec::ResultLoss { worker, count } => {
                    absorb(&mut h, 4);
                    absorb(&mut h, worker as u64);
                    absorb(&mut h, u64::from(count));
                }
            }
        }
        h
    }

    /// Draws a random plan for an `n`-worker execution over `[0, lifespan]`.
    ///
    /// Deterministic in `(cfg, n, lifespan, seed)`: the same inputs yield
    /// the same plan (same [`fingerprint`](FaultPlan::fingerprint)) on any
    /// platform or thread count. Sampling order is fixed — stragglers,
    /// then per-worker crashes, then channel jitter, then per-worker
    /// result losses — so plans are stable under config changes that
    /// disable later stages.
    pub fn sample(
        cfg: &FaultConfig,
        n: usize,
        lifespan: f64,
        seed: u64,
    ) -> Result<FaultPlan, FaultError> {
        if !(lifespan.is_finite() && lifespan > 0.0) {
            return Err(FaultError::InvalidTime { value: lifespan });
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut specs = Vec::new();

        // Chronic stragglers: a distinct subset of workers slowed for the
        // whole lifespan (partial Fisher–Yates over the index set).
        let straggler_count = cfg.straggler_count.min(n);
        if straggler_count > 0 && cfg.straggler_factor > 1.0 {
            let mut idx: Vec<usize> = (0..n).collect();
            for k in 0..straggler_count {
                let j = rng.random_range(k..n);
                idx.swap(k, j);
                specs.push(FaultSpec::Slowdown {
                    worker: idx[k],
                    factor: cfg.straggler_factor,
                    from: 0.0,
                    until: lifespan,
                });
            }
        }

        // Independent per-worker crashes at a uniform time in (0, lifespan).
        if cfg.crash_p > 0.0 {
            for worker in 0..n {
                if rng.random_bool(cfg.crash_p) {
                    let at = rng.random_range(0.0..lifespan).max(f64::MIN_POSITIVE);
                    specs.push(FaultSpec::Crash { worker, at });
                }
            }
        }

        // One transient channel-jitter window covering a random half-open
        // sub-interval of the lifespan.
        if cfg.jitter_p > 0.0 && rng.random_bool(cfg.jitter_p) {
            let a = rng.random_range(0.0..lifespan);
            let b = rng.random_range(0.0..lifespan);
            let (from, until) = if a < b { (a, b) } else { (b, a) };
            if until > from {
                specs.push(FaultSpec::ChannelJitter {
                    factor: cfg.jitter_factor,
                    from,
                    until,
                });
            }
        }

        // Independent per-worker result-message loss bursts.
        if cfg.loss_p > 0.0 && cfg.loss_max > 0 {
            for worker in 0..n {
                if rng.random_bool(cfg.loss_p) {
                    let count = rng.random_range(1..=cfg.loss_max);
                    specs.push(FaultSpec::ResultLoss { worker, count });
                }
            }
        }

        FaultPlan::new(specs)
    }
}

/// Knobs for [`FaultPlan::sample`].
///
/// The default configuration injects nothing; sweeps dial individual
/// fields up from there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Independent probability that each worker crashes during the run.
    pub crash_p: f64,
    /// Number of distinct chronic stragglers (slowed for the whole
    /// lifespan); clamped to the worker count.
    pub straggler_count: usize,
    /// Slowdown multiplier applied to each straggler (≥ 1; exactly 1
    /// disables straggler sampling).
    pub straggler_factor: f64,
    /// Probability that the channel suffers one jitter window.
    pub jitter_p: f64,
    /// Transit-time multiplier inside the jitter window.
    pub jitter_factor: f64,
    /// Independent probability that each worker's first results are lost.
    pub loss_p: f64,
    /// Maximum consecutive losses per affected worker.
    pub loss_max: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            crash_p: 0.0,
            straggler_count: 0,
            straggler_factor: 1.0,
            jitter_p: 0.0,
            jitter_factor: 1.0,
            loss_p: 0.0,
            loss_max: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_plan() -> FaultPlan {
        FaultPlan::new(vec![
            FaultSpec::Crash {
                worker: 1,
                at: 250.0,
            },
            FaultSpec::Crash {
                worker: 1,
                at: 100.0,
            },
            FaultSpec::Slowdown {
                worker: 0,
                factor: 3.0,
                from: 0.0,
                until: 600.0,
            },
            FaultSpec::Slowdown {
                worker: 0,
                factor: 2.0,
                from: 50.0,
                until: 150.0,
            },
            FaultSpec::ChannelJitter {
                factor: 2.0,
                from: 10.0,
                until: 20.0,
            },
            FaultSpec::ResultLoss {
                worker: 2,
                count: 2,
            },
            FaultSpec::ResultLoss {
                worker: 2,
                count: 1,
            },
        ])
        .unwrap()
    }

    #[test]
    fn new_rejects_any_invalid_spec() {
        let err = FaultPlan::new(vec![
            FaultSpec::Crash { worker: 0, at: 1.0 },
            FaultSpec::ResultLoss {
                worker: 1,
                count: 0,
            },
        ])
        .unwrap_err();
        assert_eq!(err, FaultError::ZeroLossCount);
    }

    #[test]
    fn empty_plan_answers_every_query_without_faults() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.crash_time(0), None);
        assert_eq!(plan.slowdown_factor(0, 10.0), None);
        assert_eq!(plan.channel_factor(10.0), None);
        assert_eq!(plan.result_losses(0), 0);
    }

    #[test]
    fn crash_time_takes_the_earliest() {
        let plan = demo_plan();
        assert_eq!(plan.crash_time(1), Some(100.0));
        assert_eq!(plan.crash_time(0), None);
    }

    #[test]
    fn overlapping_slowdowns_compound() {
        let plan = demo_plan();
        // Only the chronic window is active at t = 10.
        assert_eq!(plan.slowdown_factor(0, 10.0), Some(3.0));
        // Both windows are active at t = 100: 3 × 2.
        assert_eq!(plan.slowdown_factor(0, 100.0), Some(6.0));
        // The window end is exclusive.
        assert_eq!(plan.slowdown_factor(0, 600.0), None);
        assert_eq!(plan.slowdown_factor(1, 100.0), None);
    }

    #[test]
    fn channel_factor_respects_its_window() {
        let plan = demo_plan();
        assert_eq!(plan.channel_factor(10.0), Some(2.0));
        assert_eq!(plan.channel_factor(20.0), None);
        assert_eq!(plan.channel_factor(9.9), None);
    }

    #[test]
    fn result_losses_sum_per_worker() {
        let plan = demo_plan();
        assert_eq!(plan.result_losses(2), 3);
        assert_eq!(plan.result_losses(0), 0);
    }

    #[test]
    fn fingerprint_is_content_and_order_sensitive() {
        let plan = demo_plan();
        assert_eq!(plan.fingerprint(), demo_plan().fingerprint());
        assert_ne!(plan.fingerprint(), FaultPlan::empty().fingerprint());
        let reordered = FaultPlan::new(plan.specs().iter().rev().copied().collect()).unwrap();
        assert_ne!(plan.fingerprint(), reordered.fingerprint());
        // A one-field change moves the fingerprint.
        let mut specs = plan.specs().to_vec();
        specs[0] = FaultSpec::Crash {
            worker: 1,
            at: 250.5,
        };
        assert_ne!(
            plan.fingerprint(),
            FaultPlan::new(specs).unwrap().fingerprint()
        );
    }

    #[test]
    fn sample_is_seed_deterministic() {
        let cfg = FaultConfig {
            crash_p: 0.4,
            straggler_count: 2,
            straggler_factor: 4.0,
            jitter_p: 0.5,
            jitter_factor: 2.0,
            loss_p: 0.3,
            loss_max: 3,
        };
        let a = FaultPlan::sample(&cfg, 8, 600.0, 42).unwrap();
        let b = FaultPlan::sample(&cfg, 8, 600.0, 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = FaultPlan::sample(&cfg, 8, 600.0, 43).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn sample_with_default_config_is_empty() {
        let plan = FaultPlan::sample(&FaultConfig::default(), 8, 600.0, 7).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::empty());
    }

    #[test]
    fn sampled_stragglers_are_distinct_and_chronic() {
        let cfg = FaultConfig {
            straggler_count: 3,
            straggler_factor: 5.0,
            ..FaultConfig::default()
        };
        for seed in 0..50 {
            let plan = FaultPlan::sample(&cfg, 4, 600.0, seed).unwrap();
            let workers: Vec<usize> = plan
                .specs()
                .iter()
                .filter_map(|s| match *s {
                    FaultSpec::Slowdown {
                        worker,
                        from,
                        until,
                        ..
                    } => {
                        assert_eq!(from, 0.0);
                        assert_eq!(until, 600.0);
                        Some(worker)
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(workers.len(), 3);
            let mut dedup = workers.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "stragglers must be distinct: {workers:?}");
            assert!(workers.iter().all(|&w| w < 4));
        }
    }

    #[test]
    fn straggler_count_clamps_to_worker_count() {
        let cfg = FaultConfig {
            straggler_count: 10,
            straggler_factor: 2.0,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::sample(&cfg, 3, 600.0, 1).unwrap();
        assert_eq!(plan.specs().len(), 3);
    }

    #[test]
    fn sampled_crashes_land_strictly_inside_the_run() {
        let cfg = FaultConfig {
            crash_p: 1.0,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::sample(&cfg, 16, 600.0, 9).unwrap();
        let crashes: Vec<f64> = plan
            .specs()
            .iter()
            .filter_map(|s| match *s {
                FaultSpec::Crash { at, .. } => Some(at),
                _ => None,
            })
            .collect();
        assert_eq!(crashes.len(), 16);
        assert!(crashes.iter().all(|&t| t > 0.0 && t < 600.0));
    }

    #[test]
    fn sample_rejects_a_degenerate_lifespan() {
        let cfg = FaultConfig::default();
        assert!(FaultPlan::sample(&cfg, 4, 0.0, 1).is_err());
        assert!(FaultPlan::sample(&cfg, 4, f64::NAN, 1).is_err());
    }
}
