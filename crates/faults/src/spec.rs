//! Individual fault descriptions and their validation.

use std::error::Error;
use std::fmt;

/// One validated fault in a [`FaultPlan`](crate::FaultPlan).
///
/// Times are simulation-clock values (the same axis as the executor's
/// `SimTime`), kept as raw `f64` here so the crate stays engine-agnostic;
/// validation guarantees they are finite and non-negative, which is what
/// the executor's `SimTime::try_new` requires downstream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// Worker `worker` permanently crashes at time `at`: work it has not
    /// finished *packaging* by then is lost, and it accepts no further
    /// packages.
    Crash {
        /// Profile index of the crashing worker.
        worker: usize,
        /// Crash time (finite, ≥ 0).
        at: f64,
    },
    /// Straggler: every worker phase (unpackage / compute / package) that
    /// *starts* in `[from, until)` takes `factor` times as long.
    Slowdown {
        /// Profile index of the slowed worker.
        worker: usize,
        /// Multiplicative slowdown (finite, ≥ 1).
        factor: f64,
        /// Window start (inclusive).
        from: f64,
        /// Window end (exclusive; must exceed `from`).
        until: f64,
    },
    /// Transient channel-rate perturbation: every network transit that
    /// *starts* in `[from, until)` takes `factor` times as long.
    ChannelJitter {
        /// Multiplicative transit-time factor (finite, > 0; values below
        /// 1 model a transiently faster link).
        factor: f64,
        /// Window start (inclusive).
        from: f64,
        /// Window end (exclusive; must exceed `from`).
        until: f64,
    },
    /// The first `count` result messages sent by `worker` are lost in
    /// transit (they occupy the channel, then vanish) and must be
    /// retransmitted.
    ResultLoss {
        /// Profile index of the worker whose results are dropped.
        worker: usize,
        /// Number of consecutive losses (≥ 1).
        count: u32,
    },
}

impl FaultSpec {
    /// Validates the spec's numeric fields.
    pub fn validate(&self) -> Result<(), FaultError> {
        match *self {
            FaultSpec::Crash { at, .. } => {
                if !(at.is_finite() && at >= 0.0) {
                    return Err(FaultError::InvalidTime { value: at });
                }
            }
            FaultSpec::Slowdown {
                factor,
                from,
                until,
                ..
            } => {
                if !(factor.is_finite() && factor >= 1.0) {
                    return Err(FaultError::InvalidFactor { factor });
                }
                validate_window(from, until)?;
            }
            FaultSpec::ChannelJitter {
                factor,
                from,
                until,
                ..
            } => {
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(FaultError::InvalidFactor { factor });
                }
                validate_window(from, until)?;
            }
            FaultSpec::ResultLoss { count, .. } => {
                if count == 0 {
                    return Err(FaultError::ZeroLossCount);
                }
            }
        }
        Ok(())
    }
}

fn validate_window(from: f64, until: f64) -> Result<(), FaultError> {
    if !(from.is_finite() && from >= 0.0) {
        return Err(FaultError::InvalidTime { value: from });
    }
    if !(until.is_finite() && until > from) {
        return Err(FaultError::InvalidWindow { from, until });
    }
    Ok(())
}

/// Why a [`FaultSpec`] (or a plan containing it) was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// A time field is negative or non-finite.
    InvalidTime {
        /// The offending value.
        value: f64,
    },
    /// A fault window is empty or non-finite.
    InvalidWindow {
        /// Window start.
        from: f64,
        /// Window end (≤ `from`, or non-finite).
        until: f64,
    },
    /// A multiplicative factor is out of range (slowdowns must be ≥ 1,
    /// channel factors > 0, both finite).
    InvalidFactor {
        /// The offending factor.
        factor: f64,
    },
    /// A result-loss spec with `count == 0` describes no fault.
    ZeroLossCount,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidTime { value } => {
                write!(f, "fault time {value} must be finite and non-negative")
            }
            FaultError::InvalidWindow { from, until } => {
                write!(f, "fault window [{from}, {until}) is empty or non-finite")
            }
            FaultError::InvalidFactor { factor } => {
                write!(f, "fault factor {factor} is out of range")
            }
            FaultError::ZeroLossCount => {
                write!(f, "result-loss fault must drop at least one message")
            }
        }
    }
}

impl Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_specs_pass() {
        for spec in [
            FaultSpec::Crash { worker: 0, at: 0.0 },
            FaultSpec::Crash { worker: 3, at: 1e9 },
            FaultSpec::Slowdown {
                worker: 1,
                factor: 1.0,
                from: 0.0,
                until: 10.0,
            },
            FaultSpec::ChannelJitter {
                factor: 0.5,
                from: 2.0,
                until: 3.0,
            },
            FaultSpec::ResultLoss {
                worker: 2,
                count: 1,
            },
        ] {
            assert_eq!(spec.validate(), Ok(()), "{spec:?}");
        }
    }

    #[test]
    fn invalid_specs_report_typed_errors() {
        let cases: Vec<(FaultSpec, FaultError)> = vec![
            (
                FaultSpec::Crash {
                    worker: 0,
                    at: -1.0,
                },
                FaultError::InvalidTime { value: -1.0 },
            ),
            (
                FaultSpec::Slowdown {
                    worker: 0,
                    factor: 0.5,
                    from: 0.0,
                    until: 1.0,
                },
                FaultError::InvalidFactor { factor: 0.5 },
            ),
            (
                FaultSpec::Slowdown {
                    worker: 0,
                    factor: 2.0,
                    from: 5.0,
                    until: 5.0,
                },
                FaultError::InvalidWindow {
                    from: 5.0,
                    until: 5.0,
                },
            ),
            (
                FaultSpec::ChannelJitter {
                    factor: 0.0,
                    from: 0.0,
                    until: 1.0,
                },
                FaultError::InvalidFactor { factor: 0.0 },
            ),
            (
                FaultSpec::ResultLoss {
                    worker: 0,
                    count: 0,
                },
                FaultError::ZeroLossCount,
            ),
        ];
        for (spec, want) in cases {
            assert_eq!(spec.validate(), Err(want), "{spec:?}");
        }
        // Non-finite fields are caught everywhere.
        assert!(FaultSpec::Crash {
            worker: 0,
            at: f64::NAN
        }
        .validate()
        .is_err());
        assert!(FaultSpec::Slowdown {
            worker: 0,
            factor: f64::INFINITY,
            from: 0.0,
            until: 1.0
        }
        .validate()
        .is_err());
        assert!(FaultSpec::ChannelJitter {
            factor: 1.0,
            from: 0.0,
            until: f64::INFINITY
        }
        .validate()
        .is_err());
    }

    #[test]
    fn errors_display_their_values() {
        assert!(FaultError::InvalidTime { value: -2.0 }
            .to_string()
            .contains("-2"));
        assert!(FaultError::InvalidWindow {
            from: 1.0,
            until: 0.0
        }
        .to_string()
        .contains("[1, 0)"));
        assert!(FaultError::InvalidFactor { factor: 0.25 }
            .to_string()
            .contains("0.25"));
        assert!(FaultError::ZeroLossCount.to_string().contains("at least"));
    }
}
