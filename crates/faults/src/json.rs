//! JSON serialization for fault plans.
//!
//! A [`FaultPlan`] is pure description, which makes it the natural unit of
//! exchange between runs: an experiment samples a plan, pins it to disk,
//! and a later CLI invocation replays the *same* failures against a
//! different protocol family. The wire format is a single object with a
//! `faults` array; each element carries a `kind` discriminant plus the
//! spec's named fields:
//!
//! ```json
//! {"faults":[
//!   {"kind":"crash","worker":1,"at":250.0},
//!   {"kind":"slowdown","worker":0,"factor":3.0,"from":0.0,"until":600.0},
//!   {"kind":"jitter","factor":2.0,"from":10.0,"until":20.0},
//!   {"kind":"result-loss","worker":2,"count":3}
//! ]}
//! ```
//!
//! Deserialization is strict and typed: syntax errors, schema violations
//! (missing/mistyped fields, unknown kinds), and semantically invalid
//! specs each surface as a distinct [`PlanJsonError`] variant, and every
//! decoded plan re-runs [`FaultPlan::new`]'s validation — a plan that
//! round-trips is exactly as trustworthy as one built in code.

use std::error::Error;
use std::fmt;

use hetero_obs::json::{self, Value};

use crate::plan::FaultPlan;
use crate::spec::{FaultError, FaultSpec};

/// Why a JSON document failed to decode into a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanJsonError {
    /// The text is not well-formed JSON.
    Syntax(String),
    /// The JSON is well-formed but does not match the plan schema
    /// (missing `faults` array, unknown `kind`, missing or mistyped
    /// field). The payload names the offending element.
    Schema(String),
    /// The document decoded into specs, but a spec failed the same
    /// validation [`FaultPlan::new`] applies to in-code construction.
    Invalid(FaultError),
}

impl fmt::Display for PlanJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanJsonError::Syntax(msg) => write!(f, "fault plan is not valid JSON: {msg}"),
            PlanJsonError::Schema(msg) => write!(f, "fault plan schema violation: {msg}"),
            PlanJsonError::Invalid(err) => write!(f, "fault plan contains an invalid spec: {err}"),
        }
    }
}

impl Error for PlanJsonError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanJsonError::Invalid(err) => Some(err),
            _ => None,
        }
    }
}

impl From<FaultError> for PlanJsonError {
    fn from(err: FaultError) -> Self {
        PlanJsonError::Invalid(err)
    }
}

impl FaultPlan {
    /// Renders the plan as a compact JSON document.
    pub fn to_json(&self) -> String {
        let faults: Vec<Value> = self.specs().iter().map(spec_to_value).collect();
        Value::Obj(vec![("faults".to_string(), Value::Arr(faults))]).render()
    }

    /// Decodes a plan from the [`to_json`](FaultPlan::to_json) format,
    /// re-validating every spec.
    pub fn from_json(src: &str) -> Result<FaultPlan, PlanJsonError> {
        let doc = json::parse(src).map_err(PlanJsonError::Syntax)?;
        let faults = doc
            .get("faults")
            .ok_or_else(|| PlanJsonError::Schema("missing top-level `faults` array".to_string()))?;
        let items = match faults {
            Value::Arr(items) => items,
            _ => {
                return Err(PlanJsonError::Schema(
                    "`faults` must be an array".to_string(),
                ))
            }
        };
        let mut specs = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            specs.push(value_to_spec(item, i)?);
        }
        FaultPlan::new(specs).map_err(PlanJsonError::from)
    }
}

fn spec_to_value(spec: &FaultSpec) -> Value {
    let obj = match *spec {
        FaultSpec::Crash { worker, at } => {
            vec![kind("crash"), num("worker", worker as f64), num("at", at)]
        }
        FaultSpec::Slowdown {
            worker,
            factor,
            from,
            until,
        } => vec![
            kind("slowdown"),
            num("worker", worker as f64),
            num("factor", factor),
            num("from", from),
            num("until", until),
        ],
        FaultSpec::ChannelJitter {
            factor,
            from,
            until,
        } => vec![
            kind("jitter"),
            num("factor", factor),
            num("from", from),
            num("until", until),
        ],
        FaultSpec::ResultLoss { worker, count } => vec![
            kind("result-loss"),
            num("worker", worker as f64),
            num("count", f64::from(count)),
        ],
    };
    Value::Obj(obj)
}

fn kind(name: &str) -> (String, Value) {
    ("kind".to_string(), Value::Str(name.to_string()))
}

fn num(key: &str, x: f64) -> (String, Value) {
    (key.to_string(), Value::Num(x))
}

fn value_to_spec(item: &Value, index: usize) -> Result<FaultSpec, PlanJsonError> {
    let kind = item
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| PlanJsonError::Schema(format!("faults[{index}] has no string `kind`")))?;
    match kind {
        "crash" => Ok(FaultSpec::Crash {
            worker: field_usize(item, index, "worker")?,
            at: field_f64(item, index, "at")?,
        }),
        "slowdown" => Ok(FaultSpec::Slowdown {
            worker: field_usize(item, index, "worker")?,
            factor: field_f64(item, index, "factor")?,
            from: field_f64(item, index, "from")?,
            until: field_f64(item, index, "until")?,
        }),
        "jitter" => Ok(FaultSpec::ChannelJitter {
            factor: field_f64(item, index, "factor")?,
            from: field_f64(item, index, "from")?,
            until: field_f64(item, index, "until")?,
        }),
        "result-loss" => {
            let count = field_usize(item, index, "count")?;
            let count = u32::try_from(count).map_err(|_| {
                PlanJsonError::Schema(format!("faults[{index}].count exceeds u32 range"))
            })?;
            Ok(FaultSpec::ResultLoss {
                worker: field_usize(item, index, "worker")?,
                count,
            })
        }
        other => Err(PlanJsonError::Schema(format!(
            "faults[{index}] has unknown kind `{other}`"
        ))),
    }
}

fn field_f64(item: &Value, index: usize, key: &str) -> Result<f64, PlanJsonError> {
    item.get(key).and_then(Value::as_f64).ok_or_else(|| {
        PlanJsonError::Schema(format!("faults[{index}].{key} missing or not a number"))
    })
}

fn field_usize(item: &Value, index: usize, key: &str) -> Result<usize, PlanJsonError> {
    let x = field_f64(item, index, key)?;
    // hetero-check: allow(float-eq) — fract() == 0.0 is the exact integrality test; any tolerance would admit non-integers
    if x.fract() != 0.0 || x < 0.0 || x > u32::MAX as f64 {
        return Err(PlanJsonError::Schema(format!(
            "faults[{index}].{key} must be a non-negative integer"
        )));
    }
    Ok(x as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan::new(vec![
            FaultSpec::Crash {
                worker: 1,
                at: 250.0,
            },
            FaultSpec::Slowdown {
                worker: 0,
                factor: 3.5,
                from: 0.0,
                until: 600.0,
            },
            FaultSpec::ChannelJitter {
                factor: 0.75,
                from: 10.0,
                until: 20.0,
            },
            FaultSpec::ResultLoss {
                worker: 2,
                count: 3,
            },
        ])
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_specs_and_fingerprint() {
        let plan = sample_plan();
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).unwrap();
        assert_eq!(back.specs(), plan.specs());
        assert_eq!(back.fingerprint(), plan.fingerprint());
        // The round-trip is a fixed point: re-rendering yields the same
        // bytes, so a pinned plan file never churns.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn empty_plan_round_trips() {
        let plan = FaultPlan::empty();
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.fingerprint(), plan.fingerprint());
    }

    #[test]
    fn syntax_errors_are_typed() {
        let err = FaultPlan::from_json("{\"faults\": [").unwrap_err();
        assert!(matches!(err, PlanJsonError::Syntax(_)), "{err}");
    }

    #[test]
    fn schema_errors_name_the_offending_element() {
        let cases = [
            ("{}", "missing top-level"),
            ("{\"faults\": 3}", "must be an array"),
            (
                "{\"faults\":[{\"worker\":0}]}",
                "faults[0] has no string `kind`",
            ),
            (
                "{\"faults\":[{\"kind\":\"meteor\"}]}",
                "unknown kind `meteor`",
            ),
            (
                "{\"faults\":[{\"kind\":\"crash\",\"worker\":0}]}",
                "faults[0].at missing",
            ),
            (
                "{\"faults\":[{\"kind\":\"crash\",\"worker\":0.5,\"at\":1.0}]}",
                "faults[0].worker must be a non-negative integer",
            ),
        ];
        for (src, needle) in cases {
            let err = FaultPlan::from_json(src).unwrap_err();
            match &err {
                PlanJsonError::Schema(msg) => {
                    assert!(msg.contains(needle), "{src}: {msg}");
                }
                other => panic!("{src}: expected schema error, got {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_specs_surface_the_fault_error() {
        // Well-formed, schema-conformant, semantically invalid: a crash
        // in the past. `from_json` must apply the same validation as
        // `FaultPlan::new`.
        let err =
            FaultPlan::from_json("{\"faults\":[{\"kind\":\"crash\",\"worker\":0,\"at\":-1.0}]}")
                .unwrap_err();
        assert_eq!(
            err,
            PlanJsonError::Invalid(FaultError::InvalidTime { value: -1.0 })
        );
        // The error chain exposes the source for callers that downcast.
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn errors_display_context() {
        assert!(PlanJsonError::Syntax("x".into())
            .to_string()
            .contains("not valid JSON"));
        assert!(PlanJsonError::Schema("y".into())
            .to_string()
            .contains("schema"));
        assert!(PlanJsonError::Invalid(FaultError::ZeroLossCount)
            .to_string()
            .contains("invalid spec"));
    }
}
