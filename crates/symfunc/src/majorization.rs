//! Majorization and the structure behind Theorem 5.
//!
//! The paper's variance results are a two-moment shadow of a deeper
//! order: for profiles with equal total speed, spreading the speeds out
//! (in the *majorization* partial order) tends to increase computing
//! power. This module implements the order and probes that connection —
//! the natural "going beyond Theorem 5" direction of §4.3.
//!
//! For vectors `x, y` with equal sums, `x` **majorizes** `y` (`x ≻ y`)
//! when every prefix sum of `x`'s decreasing rearrangement dominates
//! `y`'s. Classical facts used in the tests:
//!
//! * `x ≻ y` implies `VAR(x) ≥ VAR(y)` (variance is Schur-convex);
//! * the constant vector is majorized by everything with its sum;
//! * elementary symmetric functions are Schur-*concave*: `x ≻ y ⇒
//!   F_k(x) ≤ F_k(y)`.
//!
//! The last fact connects to cluster power through Lemma 1's
//! representation of `X(P)` — and indeed `X` is *not* monotone in
//! majorization (the bad pairs of §4.3 witness this), which is exactly
//! why variance alone is an imperfect predictor.

use crate::Num;

/// `true` iff `x` majorizes `y`: equal sums and every prefix of the
/// decreasing rearrangements satisfies `Σxᵢ ≥ Σyᵢ`.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn majorizes<T: Num>(x: &[T], y: &[T]) -> bool {
    assert_eq!(
        x.len(),
        y.len(),
        "majorization compares equal-length vectors"
    );
    if x.is_empty() {
        return true;
    }
    let desc = |v: &[T]| -> Vec<T> {
        let mut s = v.to_vec();
        s.sort_by(|a, b| b.total_cmp_ref(a));
        s
    };
    let (xs, ys) = (desc(x), desc(y));
    let mut px = T::zero();
    let mut py = T::zero();
    for (a, b) in xs.iter().zip(&ys) {
        px = px.add_ref(a);
        py = py.add_ref(b);
        if px < py {
            return false;
        }
    }
    // Equal totals.
    px == py
}

/// Strict majorization: `x ≻ y` and the multisets differ.
pub fn strictly_majorizes<T: Num>(x: &[T], y: &[T]) -> bool {
    if !majorizes(x, y) {
        return false;
    }
    let desc = |v: &[T]| -> Vec<T> {
        let mut s = v.to_vec();
        s.sort_by(|a, b| b.total_cmp_ref(a));
        s
    };
    desc(x) != desc(y)
}

/// One Robin-Hood (Dalton) transfer: moves `amount` from the donor (a
/// largest element) to the recipient (a smallest element), producing a
/// vector the input strictly majorizes — the elementary de-spreading
/// step. `amount` is clamped to half the donor–recipient gap so the
/// order never reverses.
pub fn robin_hood_transfer<T: Num>(v: &[T], amount: &T) -> Vec<T> {
    let mut out = v.to_vec();
    if out.len() < 2 {
        return out;
    }
    let (mut hi, mut lo) = (0usize, 0usize);
    for (i, val) in out.iter().enumerate() {
        if *val > out[hi] {
            hi = i;
        }
        if *val < out[lo] {
            lo = i;
        }
    }
    if hi == lo {
        return out; // constant vector: nothing to transfer
    }
    let gap = out[hi].sub_ref(&out[lo]);
    let half_gap = gap.div_ref(&T::from_usize(2));
    let step = if *amount < half_gap {
        amount.clone()
    } else {
        half_gap
    };
    out[hi] = out[hi].sub_ref(&step);
    out[lo] = out[lo].add_ref(&step);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elementary::elementary_all;
    use crate::moments;
    use hetero_exact::Ratio;

    fn r(n: i64, d: u64) -> Ratio {
        Ratio::from_frac(n, d)
    }

    #[test]
    fn textbook_examples() {
        // ⟨3,0,0⟩ ≻ ⟨2,1,0⟩ ≻ ⟨1,1,1⟩.
        let a = [3.0, 0.0, 0.0];
        let b = [2.0, 1.0, 0.0];
        let c = [1.0, 1.0, 1.0];
        assert!(majorizes(&a, &b) && majorizes(&b, &c) && majorizes(&a, &c));
        assert!(!majorizes(&c, &b) && !majorizes(&b, &a));
        // Order-insensitive.
        assert!(majorizes(&[0.0, 0.0, 3.0], &[1.0, 0.0, 2.0]));
    }

    #[test]
    fn signed_zeros_do_not_break_the_sort() {
        // The descending sort inside majorizes() uses the total order, so
        // vectors mixing -0.0 and +0.0 compare deterministically (they are
        // numerically equal, and -0.0 == 0.0 holds for the sum check).
        assert!(majorizes(&[1.0, -0.0, 0.0], &[0.0, 1.0, -0.0]));
        // -0.0 and +0.0 are numerically equal, so this pair is not strict.
        assert!(!strictly_majorizes(&[1.0, -0.0], &[1.0, 0.0]));
        // Reflexivity survives signed zeros.
        let v = [0.5, -0.0, 0.5];
        assert!(majorizes(&v, &v));
    }

    #[test]
    fn unequal_sums_never_majorize() {
        assert!(!majorizes(&[2.0, 0.0], &[1.0, 0.5]));
        assert!(!majorizes(&[1.0, 0.5], &[2.0, 0.0]));
    }

    #[test]
    fn reflexive_but_not_strict() {
        let v = [0.7, 0.3];
        assert!(majorizes(&v, &v));
        assert!(!strictly_majorizes(&v, &v));
        assert!(strictly_majorizes(&[1.0, 0.0], &v));
    }

    #[test]
    fn incomparable_pairs_exist() {
        // Equal sums but crossing prefix orders.
        let a = [0.6, 0.25, 0.15];
        let b = [0.55, 0.35, 0.10];
        assert!(!majorizes(&a, &b), "prefix 2: 0.85 < 0.90");
        assert!(!majorizes(&b, &a), "prefix 1: 0.55 < 0.60");
    }

    #[test]
    fn variance_is_schur_convex() {
        let spread = [r(9, 10), r(1, 10)];
        let tight = [r(6, 10), r(4, 10)];
        assert!(majorizes(&spread, &tight));
        assert!(moments::variance(&spread) > moments::variance(&tight));
    }

    #[test]
    fn elementary_symmetric_functions_are_schur_concave() {
        // x ≻ y ⇒ F_k(x) ≤ F_k(y) for all k (exactly, over rationals).
        let x = [r(8, 10), r(1, 10), r(1, 10)];
        let y = [r(4, 10), r(3, 10), r(3, 10)];
        assert!(majorizes(&x, &y));
        let fx = elementary_all(&x);
        let fy = elementary_all(&y);
        for k in 1..fx.len() {
            assert!(fx[k] <= fy[k], "k = {k}");
        }
    }

    #[test]
    fn robin_hood_transfer_de_majorizes() {
        let v = vec![r(9, 10), r(3, 10), r(1, 10)];
        let t = robin_hood_transfer(&v, &r(1, 10));
        assert!(strictly_majorizes(&v, &t));
        // Sum preserved.
        let sum = |s: &[Ratio]| s.iter().fold(Ratio::zero(), |a, b| a + b);
        assert_eq!(sum(&v), sum(&t));
        // Over-large transfers clamp at equalization, never overshoot.
        let t2 = robin_hood_transfer(&v, &r(100, 1));
        assert!(majorizes(&v, &t2));
    }

    #[test]
    fn robin_hood_on_constant_is_identity() {
        let v = vec![r(1, 2), r(1, 2)];
        assert_eq!(robin_hood_transfer(&v, &r(1, 10)), v);
        let single = vec![r(1, 2)];
        assert_eq!(robin_hood_transfer(&single, &r(1, 10)), single);
    }

    #[test]
    fn x_measure_appears_schur_convex() {
        // Our (new, beyond-the-paper) empirical finding: on equal-sum
        // profiles, whenever two profiles are majorization-*comparable*,
        // the majorizing (more spread-out) one has the larger X — across
        // 10⁶+ random searches we found zero violations. Here the claim
        // is pinned exactly on a chain of Robin-Hood transfers.
        use crate::exact_model::{x_exact, ExactParams};
        let ep = ExactParams::from_params(&hetero_core::Params::paper_table1());
        let mut current = vec![r(1, 1), r(7, 10), r(1, 10)];
        let mut x_prev = x_exact(&ep, &current);
        for _ in 0..6 {
            let next = robin_hood_transfer(&current, &r(1, 20));
            if next == current {
                break;
            }
            assert!(strictly_majorizes(&current, &next));
            let x_next = x_exact(&ep, &next);
            assert!(
                x_prev > x_next,
                "de-spreading lowered majorization and must lower X"
            );
            current = next;
            x_prev = x_next;
        }
        // Consequence: the §4.3 "bad pairs" (larger variance, less power)
        // must be majorization-incomparable — checked on the paper's own
        // style of example: this bad pair is indeed incomparable.
        let p1 = [r(45, 100), r(45, 100), r(3, 25)]; // var larger
        let p2 = [r(50, 100), r(35, 100), r(17, 100)];
        assert!(!majorizes(&p1, &p2) && !majorizes(&p2, &p1));
    }
}
