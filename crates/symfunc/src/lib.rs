//! # hetero-symfunc — symmetric functions, moments, and power predictors
//!
//! Section 4 of the heterogeneity paper asks: *can a cluster's power be
//! predicted from its profile alone, without computing X-values?* Its
//! machinery, all implemented here:
//!
//! * **Lemma 1** — `X(P)` is a ratio of linear combinations of the
//!   elementary symmetric functions `F_k⁽ⁿ⁾(P)`, with explicit positive
//!   coefficients `α_i`, `β_i` ([`lemma1`]).
//! * **Proposition 3** — a sufficient pairwise-dominance system on the
//!   `F_k` values that certifies one cluster outperforms another
//!   ([`predictors::prop3_dominates`]).
//! * **Theorem 5 / Corollary 1** — for equal-mean clusters, dominance
//!   forces larger variance, and for `n = 2` larger variance is
//!   *equivalent* to more power: heterogeneity can lend power
//!   ([`predictors`]).
//!
//! The symmetric functions themselves ([`elementary`]) and the statistical
//! moments ([`moments`]) are generic over a numeric field so everything
//! can be evaluated both in `f64` and **exactly** over
//! [`hetero_exact::Ratio`] — sign decisions in the predicates are never
//! rounding artifacts.
//!
//! ```
//! use hetero_symfunc::elementary::elementary_all;
//!
//! // F_k of ⟨ρ1, ρ2, ρ3⟩ = (1, ρ1+ρ2+ρ3, ρ1ρ2+ρ1ρ3+ρ2ρ3, ρ1ρ2ρ3).
//! let e = elementary_all(&[2.0, 3.0, 5.0]);
//! assert_eq!(e, vec![1.0, 10.0, 31.0, 30.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod elementary;
pub mod exact_model;
pub mod indices;
pub mod lemma1;
pub mod majorization;
pub mod moments;
pub mod predictors;

mod num;

pub use num::Num;
