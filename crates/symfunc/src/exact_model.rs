//! Exact-rational mirror of the core model.
//!
//! Every `hetero-core` formula that decides an *ordering* — which cluster
//! is more powerful, which computer to upgrade — is re-implemented here
//! over [`hetero_exact::Ratio`], so theorem predicates can be evaluated
//! with mathematically certain signs. The f64 and exact paths are
//! cross-checked in the test suites of both crates.

use hetero_core::{Params, Profile};
use hetero_exact::Ratio;

/// The model constants as exact rationals.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactParams {
    /// Transit rate τ.
    pub tau: Ratio,
    /// Packaging rate π.
    pub pi: Ratio,
    /// Output/input ratio δ.
    pub delta: Ratio,
}

impl ExactParams {
    /// Builds from rationals.
    pub fn new(tau: Ratio, pi: Ratio, delta: Ratio) -> Self {
        ExactParams { tau, pi, delta }
    }

    /// Converts a f64 [`Params`] exactly (every finite double is rational).
    pub fn from_params(p: &Params) -> Self {
        ExactParams {
            // hetero-check: allow(expect) — Params validates τ, π, δ finite at construction
            tau: Ratio::from_f64(p.tau()).expect("params are finite"),
            // hetero-check: allow(expect) — Params validates τ, π, δ finite at construction
            pi: Ratio::from_f64(p.pi()).expect("params are finite"),
            // hetero-check: allow(expect) — Params validates τ, π, δ finite at construction
            delta: Ratio::from_f64(p.delta()).expect("params are finite"),
        }
    }

    /// `A = π + τ`.
    pub fn a(&self) -> Ratio {
        &self.pi + &self.tau
    }

    /// `B = 1 + (1+δ)π`.
    pub fn b(&self) -> Ratio {
        Ratio::one() + (Ratio::one() + &self.delta) * &self.pi
    }

    /// `τδ`.
    pub fn tau_delta(&self) -> Ratio {
        &self.tau * &self.delta
    }

    /// The Theorem 4 threshold `Aτδ/B²`, exactly.
    pub fn theorem4_threshold(&self) -> Ratio {
        let b = self.b();
        self.a() * self.tau_delta() / (&b * &b)
    }
}

/// Converts a profile's ρ-values to exact rationals.
pub fn exact_rhos(profile: &Profile) -> Vec<Ratio> {
    profile
        .rhos()
        .iter()
        // hetero-check: allow(expect) — Profile constructors reject non-finite speeds
        .map(|&r| Ratio::from_f64(r).expect("profile speeds are finite"))
        .collect()
}

/// Exact `X(P)` by the Theorem 2 formula.
pub fn x_exact(params: &ExactParams, rhos: &[Ratio]) -> Ratio {
    let a = params.a();
    let b = params.b();
    let td = params.tau_delta();
    let mut product = Ratio::one();
    let mut sum = Ratio::zero();
    for rho in rhos {
        let brho = &b * rho;
        let denom = &brho + &a;
        sum += &(&product / &denom);
        product *= &(&(&brho + &td) / &denom);
    }
    sum
}

/// Exact asymptotic work rate `1/(τδ + 1/X)`.
pub fn work_rate_exact(params: &ExactParams, rhos: &[Ratio]) -> Ratio {
    (params.tau_delta() + x_exact(params, rhos).recip()).recip()
}

/// Exactly compares the power of two clusters: `Ordering::Greater` means
/// the first completes strictly more work (larger X).
pub fn compare_power(params: &ExactParams, rhos1: &[Ratio], rhos2: &[Ratio]) -> std::cmp::Ordering {
    x_exact(params, rhos1).cmp(&x_exact(params, rhos2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_core::xmeasure;

    fn exact_paper_params() -> ExactParams {
        ExactParams::new(
            Ratio::from_frac(1, 1_000_000),
            Ratio::from_frac(1, 100_000),
            Ratio::one(),
        )
    }

    #[test]
    fn derived_constants_match_table2() {
        let p = exact_paper_params();
        assert_eq!(p.a(), Ratio::from_frac(11, 1_000_000));
        // B = 1 + 2π = 1.00002 = 100002/100000 = 50001/50000.
        assert_eq!(p.b(), Ratio::from_frac(50_001, 50_000));
    }

    #[test]
    fn from_params_is_exact() {
        let p = Params::paper_table1();
        let e = ExactParams::from_params(&p);
        assert_eq!(e.a().to_f64(), p.a());
        assert!((e.b().to_f64() - p.b()).abs() < 1e-15);
    }

    #[test]
    fn x_exact_matches_f64_x() {
        let fp = Params::paper_table1();
        let ep = ExactParams::from_params(&fp);
        for profile in [
            Profile::uniform_spread(8),
            Profile::harmonic(8),
            Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).unwrap(),
        ] {
            let exact = x_exact(&ep, &exact_rhos(&profile)).to_f64();
            let float = xmeasure::x_measure(&fp, &profile);
            assert!((exact - float).abs() / exact < 1e-12, "{exact} vs {float}");
        }
    }

    #[test]
    fn x_exact_is_exactly_permutation_invariant() {
        let p = exact_paper_params();
        let fwd: Vec<Ratio> = (1..=6).map(|i| Ratio::from_frac(1, i)).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        let mut shuffled = fwd.clone();
        shuffled.swap(0, 3);
        shuffled.swap(2, 5);
        let x = x_exact(&p, &fwd);
        assert_eq!(x, x_exact(&p, &rev), "Theorem 1(2), exactly");
        assert_eq!(x, x_exact(&p, &shuffled));
    }

    #[test]
    fn compare_power_resolves_ties_f64_cannot() {
        // Two profiles whose X-values agree to ~1e-17 relative: the f64
        // measure cannot rank them; the exact comparison can.
        let p = exact_paper_params();
        let base: Vec<Ratio> = vec![Ratio::one(), Ratio::from_frac(1, 2)];
        let eps = Ratio::from_frac(1, 1_000_000_000_000_000_000);
        let tweaked: Vec<Ratio> = vec![Ratio::one(), Ratio::from_frac(1, 2) - &eps];
        assert_eq!(
            compare_power(&p, &tweaked, &base),
            std::cmp::Ordering::Greater,
            "the (infinitesimally) faster cluster wins"
        );
    }

    #[test]
    fn work_rate_exact_agrees_with_f64() {
        let fp = Params::paper_table1();
        let ep = ExactParams::from_params(&fp);
        let c = Profile::harmonic(5);
        let exact = work_rate_exact(&ep, &exact_rhos(&c)).to_f64();
        let float = xmeasure::work_rate(&fp, &c);
        assert!((exact - float).abs() / exact < 1e-12);
    }

    #[test]
    fn theorem4_threshold_exact_value() {
        // fig34 params: τ = 1/5, π = 1/100, δ = 1 →
        // A = 21/100, τδ = 1/5, B = 51/50, Aτδ/B² = (21/500)/(2601/2500)
        // = 21·2500/(500·2601) = 105/2601 = 35/867.
        let p = ExactParams::new(
            Ratio::from_frac(1, 5),
            Ratio::from_frac(1, 100),
            Ratio::one(),
        );
        assert_eq!(p.theorem4_threshold(), Ratio::from_frac(35, 867));
        // And it lies in the (1/32, 1/16) window needed by Figures 3–4.
        assert!(p.theorem4_threshold() > Ratio::from_frac(1, 32));
        assert!(p.theorem4_threshold() < Ratio::from_frac(1, 16));
    }
}
