//! Scalar heterogeneity indices.
//!
//! Single numbers that summarize *how heterogeneous* a profile is, used
//! as candidate power predictors alongside the §4.2 moments (and scored
//! against them in `hetero-experiments`):
//!
//! * [`coefficient_of_variation`] — scale-free standard deviation;
//! * [`gini`] — the inequality index of the speed distribution;
//! * [`shannon_entropy_deficit`] — how far the speed *shares* are from
//!   uniform;
//! * [`speed_range_ratio`] — slowest-to-fastest ratio (the "span").
//!
//! All operate on ρ-values (times per unit work). They are invariant
//! under the paper's normalization (rescaling all speeds), which is what
//! makes them comparable across clusters measured in different units.

use hetero_core::numeric::kahan_sum;

/// Standard deviation divided by the mean. Zero iff homogeneous.
pub fn coefficient_of_variation(rhos: &[f64]) -> f64 {
    assert!(!rhos.is_empty(), "index of empty profile");
    let n = rhos.len() as f64;
    let mean = kahan_sum(rhos.iter().copied()) / n;
    let var = kahan_sum(rhos.iter().map(|r| (r - mean) * (r - mean))) / n;
    var.sqrt() / mean
}

/// The Gini coefficient of the ρ-values, in `[0, 1)`: `0` for a
/// homogeneous cluster, approaching `1` as one computer dominates the
/// total slowness.
pub fn gini(rhos: &[f64]) -> f64 {
    assert!(!rhos.is_empty(), "index of empty profile");
    let n = rhos.len();
    let mut sorted = rhos.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let total = kahan_sum(sorted.iter().copied());
    // hetero-check: allow(float-eq) — nonnegative speeds sum to exactly 0.0 only when all are 0; guards the 0/0 below
    if total == 0.0 {
        return 0.0;
    }
    // Gini = (2·Σ i·x_(i) / (n·Σx)) − (n+1)/n with 1-based ranks.
    let weighted = kahan_sum(sorted.iter().enumerate().map(|(i, x)| (i + 1) as f64 * x));
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// `1 − H(p)/ln n`, where `H` is the Shannon entropy of the normalized
/// speed shares `p_i = ρ_i / Σρ`. Zero iff homogeneous; grows toward 1 as
/// the distribution concentrates. For `n = 1` the deficit is defined as 0.
pub fn shannon_entropy_deficit(rhos: &[f64]) -> f64 {
    assert!(!rhos.is_empty(), "index of empty profile");
    let n = rhos.len();
    if n == 1 {
        return 0.0;
    }
    let total = kahan_sum(rhos.iter().copied());
    let h = kahan_sum(rhos.iter().map(|r| {
        let p = r / total;
        if p > 0.0 {
            -p * p.ln()
        } else {
            0.0
        }
    }));
    1.0 - h / (n as f64).ln()
}

/// `ρ_max / ρ_min` — the speed span (≥ 1; 1 iff homogeneous).
pub fn speed_range_ratio(rhos: &[f64]) -> f64 {
    assert!(!rhos.is_empty(), "index of empty profile");
    let max = rhos.iter().cloned().fold(0.0f64, f64::max);
    let min = rhos.iter().cloned().fold(f64::INFINITY, f64::min);
    max / min
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOMOG: [f64; 4] = [0.5, 0.5, 0.5, 0.5];
    const MILD: [f64; 4] = [0.6, 0.55, 0.45, 0.4];
    const WILD: [f64; 4] = [1.0, 0.9, 0.05, 0.05];

    #[test]
    fn homogeneous_cluster_scores_zero() {
        assert_eq!(coefficient_of_variation(&HOMOG), 0.0);
        assert!(gini(&HOMOG).abs() < 1e-12);
        assert!(shannon_entropy_deficit(&HOMOG).abs() < 1e-12);
        assert_eq!(speed_range_ratio(&HOMOG), 1.0);
    }

    #[test]
    fn indices_order_mild_below_wild() {
        assert!(coefficient_of_variation(&MILD) < coefficient_of_variation(&WILD));
        assert!(gini(&MILD) < gini(&WILD));
        assert!(shannon_entropy_deficit(&MILD) < shannon_entropy_deficit(&WILD));
        assert!(speed_range_ratio(&MILD) < speed_range_ratio(&WILD));
    }

    #[test]
    fn scale_invariance() {
        let scaled: Vec<f64> = WILD.iter().map(|r| r * 0.37).collect();
        assert!(
            (coefficient_of_variation(&WILD) - coefficient_of_variation(&scaled)).abs() < 1e-12
        );
        assert!((gini(&WILD) - gini(&scaled)).abs() < 1e-12);
        assert!((shannon_entropy_deficit(&WILD) - shannon_entropy_deficit(&scaled)).abs() < 1e-12);
        assert!((speed_range_ratio(&WILD) - speed_range_ratio(&scaled)).abs() < 1e-9);
    }

    #[test]
    fn gini_known_values() {
        // Two-point ⟨1, 0⟩-like distribution: Gini → 1/2 for n = 2 when
        // one holds everything: (2·(1·0 + 2·1))/(2·1) − 3/2 = 1/2.
        assert!((gini(&[1.0, 1e-12]) - 0.5).abs() < 1e-6);
        // Textbook: ⟨1,2,3,4⟩ has Gini = 1/4.
        assert!((gini(&[1.0, 2.0, 3.0, 4.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gini_is_order_insensitive() {
        assert!((gini(&[0.2, 0.9, 0.5]) - gini(&[0.9, 0.5, 0.2])).abs() < 1e-15);
    }

    #[test]
    fn entropy_deficit_bounds() {
        for v in [&MILD[..], &WILD[..]] {
            let d = shannon_entropy_deficit(v);
            assert!((0.0..1.0).contains(&d), "{d}");
        }
        assert_eq!(shannon_entropy_deficit(&[0.7]), 0.0, "n = 1 convention");
    }

    #[test]
    fn range_ratio_basic() {
        assert_eq!(speed_range_ratio(&[1.0, 0.25]), 4.0);
        assert_eq!(speed_range_ratio(&[0.3]), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_profile_panics() {
        let _ = gini(&[]);
    }
}
