//! Lemma 1: `X(P)` as a ratio of symmetric-function combinations.
//!
//! For an `n`-computer profile,
//!
//! ```text
//!        α_0 + α_1·F_1(P) + … + α_{n−1}·F_{n−1}(P)
//! X(P) = ------------------------------------------
//!        β_0 + β_1·F_1(P) + … + β_n·F_n(P)
//! ```
//!
//! with `β_i = Bⁱ·A^{n−i}` and `α_i = Bⁱ·Σ_{k=0}^{n−i−1} Aᵏ·(τδ)^{n−i−1−k}`
//! — all strictly positive under the standing assumption `τδ ≤ A ≤ B`.
//! This identity is what connects cluster power to the profile's symmetric
//! functions, and through them to its statistical moments (§4.2).
//!
//! The implementation is generic over the numeric field; over
//! [`hetero_exact::Ratio`] the identity with the direct Theorem 2 formula
//! holds *exactly* (asserted in the tests), which simultaneously validates
//! this module, [`crate::elementary`], and [`crate::exact_model`].

use crate::elementary::elementary_all;
use crate::Num;

/// The environment constants in whatever field the caller works in.
#[derive(Debug, Clone)]
pub struct FieldParams<T> {
    /// `A = π + τ`.
    pub a: T,
    /// `B = 1 + (1+δ)π`.
    pub b: T,
    /// `τδ`.
    pub tau_delta: T,
}

impl FieldParams<f64> {
    /// Extracts the constants from f64 [`hetero_core::Params`].
    pub fn from_params(p: &hetero_core::Params) -> Self {
        FieldParams {
            a: p.a(),
            b: p.b(),
            tau_delta: p.tau_delta(),
        }
    }
}

impl FieldParams<hetero_exact::Ratio> {
    /// Extracts the constants from [`crate::exact_model::ExactParams`].
    pub fn from_exact(p: &crate::exact_model::ExactParams) -> Self {
        FieldParams {
            a: p.a(),
            b: p.b(),
            tau_delta: p.tau_delta(),
        }
    }
}

fn pow<T: Num>(base: &T, exp: usize) -> T {
    let mut acc = T::one();
    for _ in 0..exp {
        acc = acc.mul_ref(base);
    }
    acc
}

/// The numerator coefficients `α_0…α_{n−1}` of Lemma 1.
pub fn alpha_coefficients<T: Num>(params: &FieldParams<T>, n: usize) -> Vec<T> {
    (0..n)
        .map(|i| {
            // α_i = B^i · Σ_{k=0}^{n-i-1} A^k (τδ)^{n-i-1-k}
            let mut sum = T::zero();
            for k in 0..=(n - i - 1) {
                let term = pow(&params.a, k).mul_ref(&pow(&params.tau_delta, n - i - 1 - k));
                sum = sum.add_ref(&term);
            }
            pow(&params.b, i).mul_ref(&sum)
        })
        .collect()
}

/// The denominator coefficients `β_0…β_n` of Lemma 1:
/// `β_i = Bⁱ·A^{n−i}`.
pub fn beta_coefficients<T: Num>(params: &FieldParams<T>, n: usize) -> Vec<T> {
    (0..=n)
        .map(|i| pow(&params.b, i).mul_ref(&pow(&params.a, n - i)))
        .collect()
}

/// Evaluates `X(P)` through the Lemma 1 identity.
pub fn x_via_lemma1<T: Num>(params: &FieldParams<T>, rhos: &[T]) -> T {
    let n = rhos.len();
    let f = elementary_all(rhos);
    let alphas = alpha_coefficients(params, n);
    let betas = beta_coefficients(params, n);
    let num = alphas
        .iter()
        .zip(&f)
        .fold(T::zero(), |acc, (a, fk)| acc.add_ref(&a.mul_ref(fk)));
    let den = betas
        .iter()
        .zip(&f)
        .fold(T::zero(), |acc, (b, fk)| acc.add_ref(&b.mul_ref(fk)));
    num.div_ref(&den)
}

/// Claim 1 inside Proposition 3: `α_i·β_j > α_j·β_i` for all `i < j`.
/// Returns `true` when the strict inequality holds for every pair — the
/// structural fact that makes the dominance system of Proposition 3
/// sufficient.
pub fn claim1_holds<T: Num>(params: &FieldParams<T>, n: usize) -> bool {
    let alphas = alpha_coefficients(params, n);
    let betas = beta_coefficients(params, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let lhs = alphas[i].mul_ref(&betas[j]);
            let rhs = alphas[j].mul_ref(&betas[i]);
            if lhs <= rhs {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_model::{exact_rhos, x_exact, ExactParams};
    use hetero_core::{xmeasure, Params, Profile};
    use hetero_exact::Ratio;

    fn exact_params() -> ExactParams {
        ExactParams::from_params(&Params::paper_table1())
    }

    #[test]
    fn lemma1_is_an_exact_identity() {
        // The rational-arithmetic equality X(P) == (Σα·F)/(Σβ·F) must be
        // *exact*, not approximate.
        let ep = exact_params();
        let fp = FieldParams::from_exact(&ep);
        for profile in [
            Profile::new(vec![1.0]).unwrap(),
            Profile::new(vec![1.0, 0.5]).unwrap(),
            Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).unwrap(),
            Profile::harmonic(7),
        ] {
            let rhos = exact_rhos(&profile);
            assert_eq!(
                x_via_lemma1(&fp, &rhos),
                x_exact(&ep, &rhos),
                "n = {}",
                profile.n()
            );
        }
    }

    #[test]
    fn lemma1_agrees_in_f64() {
        let p = Params::paper_table1();
        let fp = FieldParams::from_params(&p);
        let c = Profile::uniform_spread(6);
        let via = x_via_lemma1(&fp, c.rhos());
        let direct = xmeasure::x_measure(&p, &c);
        assert!((via - direct).abs() / direct < 1e-9, "{via} vs {direct}");
    }

    #[test]
    fn coefficients_are_positive_under_standing_assumption() {
        let ep = exact_params();
        let fp = FieldParams::from_exact(&ep);
        for n in [1usize, 2, 5, 9] {
            for a in alpha_coefficients(&fp, n) {
                assert!(a.is_positive());
            }
            for b in beta_coefficients(&fp, n) {
                assert!(b.is_positive());
            }
        }
    }

    #[test]
    fn beta_closed_form() {
        let fp = FieldParams {
            a: 2.0f64,
            b: 3.0,
            tau_delta: 1.0,
        };
        // n = 3: β = [A³, BA², B²A, B³] = [8, 12, 18, 27].
        assert_eq!(beta_coefficients(&fp, 3), vec![8.0, 12.0, 18.0, 27.0]);
    }

    #[test]
    fn alpha_closed_form_small() {
        let fp = FieldParams {
            a: 2.0f64,
            b: 3.0,
            tau_delta: 1.0,
        };
        // n = 2: α_0 = A + τδ = 3, α_1 = B = 3.
        assert_eq!(alpha_coefficients(&fp, 2), vec![3.0, 3.0]);
        // n = 3: α_0 = A² + A·τδ + τδ² = 7, α_1 = B(A + τδ) = 9, α_2 = B² = 9.
        assert_eq!(alpha_coefficients(&fp, 3), vec![7.0, 9.0, 9.0]);
    }

    #[test]
    fn claim1_holds_exactly_for_paper_params() {
        let ep = exact_params();
        let fp = FieldParams::from_exact(&ep);
        for n in [2usize, 3, 6, 10] {
            assert!(claim1_holds(&fp, n), "Claim 1 fails at n = {n}");
        }
    }

    #[test]
    fn claim1_difference_formula() {
        // The proof's closed form: α_iβ_j − α_jβ_i =
        // B^{i+j} Σ_{k=n−j}^{n−1−i} A^{2n−1−k−i−j} (τδ)^k. Check one cell.
        let ep = ExactParams::new(
            Ratio::from_frac(1, 5),
            Ratio::from_frac(1, 100),
            Ratio::one(),
        );
        let fp = FieldParams::from_exact(&ep);
        let n = 4;
        let (i, j) = (1usize, 3usize);
        let alphas = alpha_coefficients(&fp, n);
        let betas = beta_coefficients(&fp, n);
        let diff = alphas[i]
            .mul_ref(&betas[j])
            .sub_ref(&alphas[j].mul_ref(&betas[i]));
        let mut expect = Ratio::zero();
        for k in (n - j)..=(n - 1 - i) {
            let term = pow(&fp.a, 2 * n - 1 - k - i - j).mul_ref(&pow(&fp.tau_delta, k));
            expect = expect.add_ref(&term);
        }
        expect = expect.mul_ref(&pow(&fp.b, i + j));
        assert_eq!(diff, expect);
    }
}
