//! Elementary symmetric functions `F_k⁽ⁿ⁾` (paper §4.1, Table 5).
//!
//! `F_k⁽ⁿ⁾(x_1,…,x_n)` is the sum over all `k`-element products of the
//! variables, with the paper's convention `F_0⁽ⁿ⁾ ≡ 1`. Two evaluation
//! strategies are provided:
//!
//! * [`elementary_all`] — the O(n²) in-place dynamic program (the
//!   coefficients of `Π(t + x_i)` built one factor at a time);
//! * [`elementary_all_dc`] — divide-and-conquer polynomial products.
//!
//! Both are exact over [`hetero_exact::Ratio`]; over `f64` all terms are
//! nonnegative for ρ-values, so there is no cancellation and the DP is
//! accurate. The two are cross-checked in the tests and raced in the
//! `hetero-bench` ablation (divide-and-conquer keeps exact-rational
//! intermediates *small*, which dominates its cost).

use crate::Num;

/// All elementary symmetric functions of `values`:
/// returns `[F_0, F_1, …, F_n]` (length `n + 1`, `F_0 = 1`).
pub fn elementary_all<T: Num>(values: &[T]) -> Vec<T> {
    let mut e = Vec::with_capacity(values.len() + 1);
    e.push(T::one());
    for (i, v) in values.iter().enumerate() {
        // e'[k] = e[k] + v·e[k-1], processed from high k down so the
        // previous generation is still intact when read.
        e.push(T::zero());
        for k in (1..=i + 1).rev() {
            e[k] = e[k].add_ref(&v.mul_ref(&e[k - 1]));
        }
    }
    e
}

/// One elementary symmetric function `F_k⁽ⁿ⁾(values)`.
///
/// # Panics
/// Panics when `k > values.len()`.
pub fn elementary_k<T: Num>(values: &[T], k: usize) -> T {
    assert!(
        k <= values.len(),
        "F_{k} undefined for {} variables",
        values.len()
    );
    elementary_all(values)[k].clone()
}

/// [`elementary_all`] by divide and conquer: the coefficient vector of
/// `Π_i (t + x_i)` computed as a balanced product tree.
pub fn elementary_all_dc<T: Num>(values: &[T]) -> Vec<T> {
    fn poly_of<T: Num>(values: &[T]) -> Vec<T> {
        match values {
            [] => vec![T::one()],
            [x] => vec![T::one(), x.clone()],
            _ => {
                let (lo, hi) = values.split_at(values.len() / 2);
                poly_mul(&poly_of(lo), &poly_of(hi))
            }
        }
    }
    // Coefficient convention: index k holds F_k (coefficient of t^(n-k)).
    fn poly_mul<T: Num>(a: &[T], b: &[T]) -> Vec<T> {
        let mut out = vec![T::zero(); a.len() + b.len() - 1];
        for (i, ai) in a.iter().enumerate() {
            for (j, bj) in b.iter().enumerate() {
                out[i + j] = out[i + j].add_ref(&ai.mul_ref(bj));
            }
        }
        out
    }
    poly_of(values)
}

/// Power sums `p_k = Σ_i x_i^k` for `k = 0…max_k` (with `p_0 = n`).
pub fn power_sums<T: Num>(values: &[T], max_k: usize) -> Vec<T> {
    let mut out = Vec::with_capacity(max_k + 1);
    out.push(T::from_usize(values.len()));
    let mut powers: Vec<T> = values.to_vec();
    for _ in 1..=max_k {
        let sum = powers.iter().fold(T::zero(), |acc, p| acc.add_ref(p));
        out.push(sum);
        for (p, v) in powers.iter_mut().zip(values) {
            *p = p.mul_ref(v);
        }
    }
    out.truncate(max_k + 1);
    out
}

/// Recovers the elementary symmetric functions from power sums via
/// Newton's identities: `k·e_k = Σ_{i=1}^{k} (−1)^{i−1} e_{k−i} p_i`.
///
/// Provided as an independent third evaluation path for cross-validation.
pub fn elementary_from_power_sums<T: Num>(p: &[T], n: usize) -> Vec<T> {
    assert!(p.len() > n, "need power sums up to p_n");
    let mut e = vec![T::one()];
    for k in 1..=n {
        let mut acc = T::zero();
        let mut negative = false;
        for i in 1..=k {
            let term = e[k - i].mul_ref(&p[i]);
            acc = if negative {
                acc.sub_ref(&term)
            } else {
                acc.add_ref(&term)
            };
            negative = !negative;
        }
        e.push(acc.div_ref(&T::from_usize(k)));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_exact::Ratio;

    #[test]
    fn matches_table5_n2() {
        let e = elementary_all(&[2.0, 3.0]);
        assert_eq!(e, vec![1.0, 5.0, 6.0]); // F_1 = ρ1+ρ2, F_2 = ρ1ρ2
    }

    #[test]
    fn matches_table5_n3() {
        let (a, b, c) = (2.0, 3.0, 5.0);
        let e = elementary_all(&[a, b, c]);
        assert_eq!(e[1], a + b + c);
        assert_eq!(e[2], a * b + a * c + b * c);
        assert_eq!(e[3], a * b * c);
    }

    #[test]
    fn matches_table5_n4() {
        let v = [2.0, 3.0, 5.0, 7.0];
        let e = elementary_all(&v);
        assert_eq!(e[1], 17.0);
        assert_eq!(
            e[2],
            2.0 * 3.0 + 2.0 * 5.0 + 2.0 * 7.0 + 3.0 * 5.0 + 3.0 * 7.0 + 5.0 * 7.0
        );
        assert_eq!(
            e[3],
            2.0 * 3.0 * 5.0 + 2.0 * 3.0 * 7.0 + 2.0 * 5.0 * 7.0 + 3.0 * 5.0 * 7.0
        );
        assert_eq!(e[4], 210.0);
    }

    #[test]
    fn empty_input_is_f0_only() {
        let e: Vec<f64> = elementary_all(&[]);
        assert_eq!(e, vec![1.0]);
    }

    #[test]
    fn f0_is_always_one() {
        let e = elementary_all(&[0.25, 0.5, 1.0]);
        assert_eq!(e[0], 1.0);
    }

    #[test]
    fn dp_and_dc_agree() {
        let v: Vec<f64> = (1..=12).map(|i| 1.0 / f64::from(i)).collect();
        let dp = elementary_all(&v);
        let dc = elementary_all_dc(&v);
        assert_eq!(dp.len(), dc.len());
        for (a, b) in dp.iter().zip(&dc) {
            assert!((a - b).abs() <= 1e-14 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn dp_and_dc_agree_exactly_over_ratio() {
        let v: Vec<Ratio> = (1..=9).map(|i| Ratio::from_frac(1, i)).collect();
        assert_eq!(elementary_all(&v), elementary_all_dc(&v));
    }

    #[test]
    fn elementary_k_picks_one() {
        let v = [1.0, 2.0, 4.0];
        assert_eq!(elementary_k(&v, 0), 1.0);
        assert_eq!(elementary_k(&v, 2), 1.0 * 2.0 + 1.0 * 4.0 + 2.0 * 4.0);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn elementary_k_out_of_range_panics() {
        let _ = elementary_k(&[1.0, 2.0], 3);
    }

    #[test]
    fn permutation_invariance() {
        let a = elementary_all(&[0.2, 0.9, 0.5, 0.7]);
        let b = elementary_all(&[0.9, 0.7, 0.2, 0.5]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-15);
        }
    }

    #[test]
    fn power_sums_basic() {
        let p = power_sums(&[1.0, 2.0, 3.0], 3);
        assert_eq!(p, vec![3.0, 6.0, 14.0, 36.0]);
        let p0: Vec<f64> = power_sums(&[5.0, 5.0], 0);
        assert_eq!(p0, vec![2.0]);
    }

    #[test]
    fn newton_identities_recover_elementary() {
        let v: Vec<Ratio> = [3i64, 5, 7, 11]
            .iter()
            .map(|&x| Ratio::from_int(x))
            .collect();
        let p = power_sums(&v, v.len());
        let from_newton = elementary_from_power_sums(&p, v.len());
        assert_eq!(from_newton, elementary_all(&v));
    }

    #[test]
    fn newton_identities_f64() {
        let v = [0.25, 0.5, 0.75, 1.0, 0.1];
        let p = power_sums(&v, v.len());
        let e1 = elementary_from_power_sums(&p, v.len());
        let e2 = elementary_all(&v);
        for (a, b) in e1.iter().zip(&e2) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
