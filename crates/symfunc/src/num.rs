//! A minimal numeric-field abstraction.
//!
//! The symmetric-function and moment code runs over both `f64` (fast,
//! approximate) and [`hetero_exact::Ratio`] (slow, exact). This trait is
//! the small common surface they share; it passes by reference so `Ratio`
//! avoids needless clones.

use hetero_exact::Ratio;

/// A commutative ring with division where needed (a field, in practice).
pub trait Num: Clone + PartialEq + PartialOrd {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// `self + other`.
    fn add_ref(&self, other: &Self) -> Self;
    /// `self - other`.
    fn sub_ref(&self, other: &Self) -> Self;
    /// `self · other`.
    fn mul_ref(&self, other: &Self) -> Self;
    /// `self / other`.
    fn div_ref(&self, other: &Self) -> Self;
    /// Embeds a small nonnegative integer.
    fn from_usize(v: usize) -> Self;
    /// A *total* order suitable for sorting: `f64` uses IEEE 754
    /// `total_cmp` (never panics, orders NaN deterministically), exact
    /// types their `Ord`.
    fn total_cmp_ref(&self, other: &Self) -> std::cmp::Ordering;
}

impl Num for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add_ref(&self, other: &Self) -> Self {
        self + other
    }
    fn sub_ref(&self, other: &Self) -> Self {
        self - other
    }
    fn mul_ref(&self, other: &Self) -> Self {
        self * other
    }
    fn div_ref(&self, other: &Self) -> Self {
        self / other
    }
    fn from_usize(v: usize) -> Self {
        v as f64
    }
    fn total_cmp_ref(&self, other: &Self) -> std::cmp::Ordering {
        self.total_cmp(other)
    }
}

impl Num for Ratio {
    fn zero() -> Self {
        Ratio::zero()
    }
    fn one() -> Self {
        Ratio::one()
    }
    fn add_ref(&self, other: &Self) -> Self {
        self + other
    }
    fn sub_ref(&self, other: &Self) -> Self {
        self - other
    }
    fn mul_ref(&self, other: &Self) -> Self {
        self * other
    }
    fn div_ref(&self, other: &Self) -> Self {
        self / other
    }
    fn from_usize(v: usize) -> Self {
        Ratio::from_int(v as i64)
    }
    fn total_cmp_ref(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<T: Num + std::fmt::Debug>() {
        let two = T::one().add_ref(&T::one());
        assert_eq!(two, T::from_usize(2));
        assert_eq!(two.sub_ref(&T::one()), T::one());
        assert_eq!(two.mul_ref(&two), T::from_usize(4));
        assert_eq!(T::from_usize(4).div_ref(&two), two);
        assert!(T::zero() < T::one());
        assert_eq!(T::zero().total_cmp_ref(&T::one()), std::cmp::Ordering::Less);
        assert_eq!(two.total_cmp_ref(&two), std::cmp::Ordering::Equal);
    }

    #[test]
    fn f64_impl() {
        exercise::<f64>();
    }

    #[test]
    fn ratio_impl() {
        exercise::<Ratio>();
    }
}
