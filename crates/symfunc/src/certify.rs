//! Exact certification of scheduling decisions.
//!
//! The decisions the paper's theory drives — *which cluster do I rent*,
//! *which computer do I upgrade* — are sign decisions on differences of
//! large products, exactly where floating point silently lies. This
//! module certifies them over exact rationals:
//!
//! * [`certify_comparison`] — which of two clusters completes more work;
//! * [`certify_best_additive`] / [`certify_best_multiplicative`] — the
//!   optimal single upgrade, by exhaustive exact comparison;
//! * [`certify_hecr_bracket`] — rational bounds `lo < ρ_C ≤ hi` on the
//!   (irrational) HECR, to any requested width, by exact bisection on the
//!   homogeneous X closed form.
//!
//! Everything here is slow and certain; the f64 twins in `hetero-core`
//! are fast and (as the cross-validation tests show) agree except within
//! ulps of a tie.

use std::cmp::Ordering;

use crate::exact_model::{x_exact, ExactParams};
use hetero_exact::Ratio;

/// Exact verdict on two clusters: `Greater` = the first completes
/// strictly more work.
pub fn certify_comparison(params: &ExactParams, p1: &[Ratio], p2: &[Ratio]) -> Ordering {
    x_exact(params, p1).cmp(&x_exact(params, p2))
}

/// The certified best single *additive* upgrade by `phi`: the index whose
/// upgrade maximizes exact X (ties broken to the larger index, matching
/// the paper's convention). Computers with `ρ ≤ φ` are not upgradable.
///
/// Returns `None` when no computer can absorb the upgrade.
pub fn certify_best_additive(params: &ExactParams, rhos: &[Ratio], phi: &Ratio) -> Option<usize> {
    let mut best: Option<(usize, Ratio)> = None;
    for i in 0..rhos.len() {
        let upgraded = &rhos[i] - phi;
        if !upgraded.is_positive() {
            continue;
        }
        let mut candidate = rhos.to_vec();
        candidate[i] = upgraded;
        let x = x_exact(params, &candidate);
        match &best {
            Some((_, bx)) if x < *bx => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// The certified best single *multiplicative* upgrade by `psi`
/// (`0 < ψ < 1`), ties to the larger index.
pub fn certify_best_multiplicative(
    params: &ExactParams,
    rhos: &[Ratio],
    psi: &Ratio,
) -> Option<usize> {
    if rhos.is_empty() || !psi.is_positive() || *psi >= Ratio::one() {
        return None;
    }
    let mut best: Option<(usize, Ratio)> = None;
    for i in 0..rhos.len() {
        let mut candidate = rhos.to_vec();
        candidate[i] = &candidate[i] * psi;
        let x = x_exact(params, &candidate);
        match &best {
            Some((_, bx)) if x < *bx => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Exact X of a homogeneous cluster `⟨ρ,…,ρ⟩` (paper Eq. 2, rational
/// form): `(1 − ((Bρ+τδ)/(Bρ+A))ⁿ) / (A − τδ)`.
pub fn x_homogeneous_exact(params: &ExactParams, rho: &Ratio, n: usize) -> Ratio {
    let b_rho = params.b() * rho;
    let ratio = (&b_rho + &params.tau_delta()) / (&b_rho + &params.a());
    (Ratio::one() - ratio.powi(n as i32)) / (params.a() - params.tau_delta())
}

/// Certified rational bracket `(lo, hi)` with `lo < ρ_C ≤ hi` and
/// `hi − lo ≤ width`, by exact bisection: `X(⟨hi,…⟩) ≤ X(P) ≤ X(⟨lo,…⟩)`
/// holds exactly at return.
///
/// # Panics
/// Panics when `width` is not positive or the profile is empty.
pub fn certify_hecr_bracket(params: &ExactParams, rhos: &[Ratio], width: &Ratio) -> (Ratio, Ratio) {
    assert!(!rhos.is_empty(), "empty profile");
    assert!(width.is_positive(), "bracket width must be positive");
    let n = rhos.len();
    let target = x_exact(params, rhos);
    // hetero-check: allow(expect) — the assert above rejects empty profiles, so min exists
    let mut lo = rhos.iter().min().expect("nonempty").clone(); // fastest
                                                               // hetero-check: allow(expect) — the assert above rejects empty profiles, so max exists
    let mut hi = rhos.iter().max().expect("nonempty").clone(); // slowest
    debug_assert!(x_homogeneous_exact(params, &lo, n) >= target);
    debug_assert!(x_homogeneous_exact(params, &hi, n) <= target);
    let two = Ratio::from_int(2);
    while &(&hi - &lo) > width {
        let mid = (&hi + &lo) / &two;
        if x_homogeneous_exact(params, &mid, n) >= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_core::{hecr, speedup, Params, Profile};

    fn exact_params() -> ExactParams {
        ExactParams::from_params(&Params::paper_table1())
    }

    fn rational_profile(fracs: &[(i64, u64)]) -> Vec<Ratio> {
        fracs.iter().map(|&(n, d)| Ratio::from_frac(n, d)).collect()
    }

    #[test]
    fn comparison_agrees_with_f64_when_f64_can_see() {
        let ep = exact_params();
        let fp = Params::paper_table1();
        let p1 = rational_profile(&[(1, 1), (1, 2), (1, 4)]);
        let p2 = rational_profile(&[(1, 1), (1, 3), (1, 3)]);
        let exact = certify_comparison(&ep, &p1, &p2);
        let f1 =
            hetero_core::xmeasure::x_measure(&fp, &Profile::new(vec![1.0, 0.5, 0.25]).unwrap());
        let f2 = hetero_core::xmeasure::x_measure(
            &fp,
            &Profile::new(vec![1.0, 1.0 / 3.0, 1.0 / 3.0]).unwrap(),
        );
        assert_eq!(exact == Ordering::Greater, f1 > f2);
    }

    #[test]
    fn certified_additive_matches_theorem3() {
        let ep = exact_params();
        let rhos = rational_profile(&[(1, 1), (1, 2), (1, 3), (1, 4)]);
        let best = certify_best_additive(&ep, &rhos, &Ratio::from_frac(1, 16)).unwrap();
        assert_eq!(best, 3, "Theorem 3, exactly");
    }

    #[test]
    fn certified_additive_skips_unupgradable() {
        let ep = exact_params();
        let rhos = rational_profile(&[(1, 1), (1, 32)]);
        // φ = 1/16 > 1/32: only the slow computer can absorb it.
        let best = certify_best_additive(&ep, &rhos, &Ratio::from_frac(1, 16)).unwrap();
        assert_eq!(best, 0);
        // φ bigger than everything: no upgrade possible.
        assert!(certify_best_additive(&ep, &rhos, &Ratio::from_int(2)).is_none());
    }

    #[test]
    fn certified_multiplicative_matches_theorem4_phases() {
        let fig = ExactParams::new(
            Ratio::from_frac(1, 5),
            Ratio::from_frac(1, 100),
            Ratio::one(),
        );
        let psi = Ratio::from_frac(1, 2);
        // Condition (1): slow cluster → speed the fastest (largest index).
        let slow = rational_profile(&[(1, 1), (1, 1), (1, 1), (1, 2)]);
        assert_eq!(certify_best_multiplicative(&fig, &slow, &psi), Some(3));
        // Condition (2): everyone at 1/16 → after the tie-break, the
        // f64 greedy engine picks index 3; the exact one must agree.
        let fast = rational_profile(&[(1, 16), (1, 16), (1, 16), (1, 16)]);
        assert_eq!(certify_best_multiplicative(&fig, &fast, &psi), Some(3));
        // Degenerate ψ values refuse.
        assert_eq!(
            certify_best_multiplicative(&fig, &slow, &Ratio::one()),
            None
        );
    }

    #[test]
    fn exact_and_f64_best_upgrade_agree_on_a_battery() {
        let ep = exact_params();
        let fp = Params::paper_table1();
        for fracs in [
            &[(1i64, 1u64), (1, 2)][..],
            &[(1, 1), (9, 10), (1, 5)],
            &[(1, 1), (1, 2), (1, 3), (1, 4), (1, 5)],
        ] {
            let rhos = rational_profile(fracs);
            let f64_profile =
                Profile::from_unsorted(rhos.iter().map(|r| r.to_f64()).collect()).unwrap();
            let phi_exact = Ratio::from_frac(1, 100);
            let exact = certify_best_additive(&ep, &rhos, &phi_exact).unwrap();
            let float = speedup::best_additive_index(&fp, &f64_profile, 0.01).unwrap();
            assert_eq!(exact, float, "{fracs:?}");
        }
    }

    #[test]
    fn hecr_bracket_contains_the_f64_hecr() {
        let ep = exact_params();
        let fp = Params::paper_table1();
        for fracs in [
            &[(1i64, 1u64), (1, 2), (1, 4)][..],
            &[(1, 1), (1, 2), (1, 3), (1, 4)],
        ] {
            let rhos = rational_profile(fracs);
            let profile =
                Profile::from_unsorted(rhos.iter().map(|r| r.to_f64()).collect()).unwrap();
            let width = Ratio::from_frac(1, 1_000_000);
            let (lo, hi) = certify_hecr_bracket(&ep, &rhos, &width);
            assert!(&hi - &lo <= width);
            let f64_hecr = hecr::hecr(&fp, &profile).unwrap();
            assert!(
                lo.to_f64() - 1e-9 <= f64_hecr && f64_hecr <= hi.to_f64() + 1e-9,
                "{fracs:?}: [{}, {}] vs {f64_hecr}",
                lo.to_f64(),
                hi.to_f64()
            );
        }
    }

    #[test]
    fn hecr_bracket_invariant_holds_exactly() {
        let ep = exact_params();
        let rhos = rational_profile(&[(1, 1), (1, 2)]);
        let (lo, hi) = certify_hecr_bracket(&ep, &rhos, &Ratio::from_frac(1, 1024));
        let n = rhos.len();
        let target = x_exact(&ep, &rhos);
        assert!(x_homogeneous_exact(&ep, &lo, n) >= target);
        assert!(x_homogeneous_exact(&ep, &hi, n) <= target);
    }

    #[test]
    fn homogeneous_exact_matches_general_formula() {
        let ep = exact_params();
        let rho = Ratio::from_frac(3, 7);
        for n in [1usize, 2, 5] {
            let direct = x_exact(&ep, &vec![rho.clone(); n]);
            assert_eq!(x_homogeneous_exact(&ep, &rho, n), direct, "n = {n}");
        }
    }
}
