//! Statistical moments of profiles (paper §4.2 and the companion paper's
//! extension to higher moments).
//!
//! The bridge to the symmetric functions (paper Eqs. 7–8):
//!
//! ```text
//! VAR(P)   = p_2/n − (F_1/n)²
//! F_2(P)   = F_1²/2 − p_2/2        (p_2 = Σρ_i²)
//! ```
//!
//! so for clusters with equal mean speed, *larger variance ⇔ smaller F_2* —
//! the pivot of Theorem 5.

use crate::Num;

/// Arithmetic mean.
pub fn mean<T: Num>(values: &[T]) -> T {
    assert!(!values.is_empty(), "mean of empty slice");
    let sum = values.iter().fold(T::zero(), |acc, v| acc.add_ref(v));
    sum.div_ref(&T::from_usize(values.len()))
}

/// Population variance (the paper's `VAR(P)`, Eq. 7).
pub fn variance<T: Num>(values: &[T]) -> T {
    let m = mean(values);
    let sq = values.iter().fold(T::zero(), |acc, v| {
        let d = v.sub_ref(&m);
        acc.add_ref(&d.mul_ref(&d))
    });
    sq.div_ref(&T::from_usize(values.len()))
}

/// The `k`-th central moment `Σ(ρ−ρ̄)ᵏ / n`.
pub fn central_moment<T: Num>(values: &[T], k: usize) -> T {
    let m = mean(values);
    let sum = values.iter().fold(T::zero(), |acc, v| {
        let d = v.sub_ref(&m);
        let mut p = T::one();
        for _ in 0..k {
            p = p.mul_ref(&d);
        }
        acc.add_ref(&p)
    });
    sum.div_ref(&T::from_usize(values.len()))
}

/// Skewness: `μ_3 / μ_2^{3/2}` (f64 only — needs a real root).
pub fn skewness(values: &[f64]) -> f64 {
    let m2 = central_moment(values, 2);
    let m3 = central_moment(values, 3);
    if m2 <= 0.0 {
        0.0
    } else {
        m3 / m2.powf(1.5)
    }
}

/// Excess kurtosis: `μ_4 / μ_2² − 3` (f64 only).
pub fn kurtosis_excess(values: &[f64]) -> f64 {
    let m2 = central_moment(values, 2);
    let m4 = central_moment(values, 4);
    if m2 <= 0.0 {
        0.0
    } else {
        m4 / (m2 * m2) - 3.0
    }
}

/// Geometric mean `(F_n)^{1/n}` (f64 only). Computed in log space for
/// stability at large `n`.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty slice");
    let log_sum = hetero_core::numeric::kahan_sum(values.iter().map(|v| v.ln()));
    (log_sum / values.len() as f64).exp()
}

/// The paper's Eq. 8 identity: `F_2 = (F_1² − p_2)/2`.
pub fn f2_from_power_sums<T: Num>(f1: &T, p2: &T) -> T {
    let two = T::from_usize(2);
    f1.mul_ref(f1).sub_ref(p2).div_ref(&two)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elementary::{elementary_all, power_sums};
    use hetero_exact::Ratio;

    #[test]
    fn mean_and_variance_basic() {
        let v = [1.0, 0.5];
        assert_eq!(mean(&v), 0.75);
        assert!((variance(&v) - 0.0625).abs() < 1e-15);
        assert_eq!(variance(&[0.3, 0.3, 0.3]), 0.0);
    }

    #[test]
    fn exact_mean_variance() {
        let v: Vec<Ratio> = vec![Ratio::one(), Ratio::from_frac(1, 2)];
        assert_eq!(mean(&v), Ratio::from_frac(3, 4));
        assert_eq!(variance(&v), Ratio::from_frac(1, 16));
    }

    #[test]
    fn eq7_connects_variance_to_power_sums() {
        // VAR = p2/n − (F1/n)².
        let v = [0.9, 0.4, 0.7, 0.1];
        let n = v.len() as f64;
        let p = power_sums(&v, 2);
        let direct = variance(&v);
        let via = p[2] / n - (p[1] / n) * (p[1] / n);
        assert!((direct - via).abs() < 1e-15);
    }

    #[test]
    fn eq8_connects_f2_to_power_sums() {
        let v: Vec<Ratio> = [(1i64, 1u64), (1, 2), (1, 3), (1, 4)]
            .iter()
            .map(|&(a, b)| Ratio::from_frac(a, b))
            .collect();
        let e = elementary_all(&v);
        let p = power_sums(&v, 2);
        assert_eq!(f2_from_power_sums(&p[1], &p[2]), e[2], "Eq. 8, exactly");
    }

    #[test]
    fn equal_mean_larger_variance_means_smaller_f2() {
        // The Theorem 5 pivot, on a concrete pair with equal means.
        let spread = [1.0f64, 0.2, 0.6]; // mean 0.6
        let tight = [0.7f64, 0.5, 0.6]; // mean 0.6
        assert!((mean(&spread) - mean(&tight)).abs() < 1e-15);
        assert!(variance(&spread) > variance(&tight));
        let f2s = elementary_all(&spread)[2];
        let f2t = elementary_all(&tight)[2];
        assert!(f2s < f2t);
    }

    #[test]
    fn central_moments() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!(
            (central_moment(&v, 1)).abs() < 1e-15,
            "first central moment is 0"
        );
        assert!((central_moment(&v, 2) - 1.25).abs() < 1e-15);
    }

    #[test]
    fn skewness_signs() {
        assert!(
            skewness(&[0.1, 0.1, 0.1, 1.0]) > 0.5,
            "right tail → positive"
        );
        assert!(
            skewness(&[1.0, 1.0, 1.0, 0.1]) < -0.5,
            "left tail → negative"
        );
        let sym = [0.2, 0.5, 0.8];
        assert!(skewness(&sym).abs() < 1e-12);
        assert_eq!(skewness(&[0.4, 0.4]), 0.0, "degenerate variance → 0");
    }

    #[test]
    fn kurtosis_of_two_point_distribution() {
        // Symmetric two-point mass has excess kurtosis −2.
        assert!((kurtosis_excess(&[0.0, 1.0]) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_matches_fn_root() {
        let v = [1.0, 0.5, 0.25, 0.125];
        let fns = elementary_all(&v);
        let gm = geometric_mean(&v);
        assert!((gm - fns[4].powf(0.25)).abs() < 1e-12);
        assert!(gm < mean(&v), "AM–GM");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_of_empty_panics() {
        let _: f64 = mean(&[]);
    }
}
