//! Profile-only predictors of relative cluster power (paper §4).
//!
//! Given two profiles with the *same* size, these predicates try to decide
//! which cluster completes more work without evaluating X:
//!
//! * [`prop3_dominates`] — the Proposition 3 system: sufficient (never
//!   wrong, but may abstain).
//! * [`predict_by_variance`] — Theorem 5 / §4.3: for equal-mean clusters,
//!   bet on the larger variance. Provably right for `n = 2`; empirically
//!   right ~76 % of the time for large `n`, and (empirically) always right
//!   when the variance gap exceeds a threshold θ.
//! * [`predict_by_mean`] — the naive bet on the smaller mean speed; the
//!   paper's §4 example shows it is *not* valid. Included so experiments
//!   can score it against the variance predictor.
//! * [`predict_by_skewness`] — higher-moment tiebreak explored by the
//!   companion paper; exposed for the extension experiment.

use std::cmp::Ordering;

use crate::elementary::elementary_all;
use crate::moments;
use crate::Num;

/// The Proposition 3 dominance test: returns `true` when profile `p1`
/// *provably* outperforms `p2`, i.e. when for all `0 ≤ i < j ≤ n`
///
/// ```text
/// F_i(P1)·F_j(P2) ≥ F_i(P2)·F_j(P1)
/// ```
///
/// with at least one strict inequality. Evaluate over
/// [`hetero_exact::Ratio`] for certainty.
///
/// # Panics
/// Panics when the profiles have different sizes (the system compares
/// same-`n` clusters).
pub fn prop3_dominates<T: Num>(p1: &[T], p2: &[T]) -> bool {
    assert_eq!(
        p1.len(),
        p2.len(),
        "Proposition 3 compares equal-size clusters"
    );
    let f1 = elementary_all(p1);
    let f2 = elementary_all(p2);
    let n = p1.len();
    let mut some_strict = false;
    for i in 0..=n {
        for j in (i + 1)..=n {
            let lhs = f1[i].mul_ref(&f2[j]);
            let rhs = f2[i].mul_ref(&f1[j]);
            if lhs < rhs {
                return false;
            }
            if lhs > rhs {
                some_strict = true;
            }
        }
    }
    some_strict
}

/// Predicts relative power from variances: `Greater` means `p1` is
/// predicted the more powerful (it has the larger variance), `Less` the
/// opposite, `Equal` when the variances tie. Only meaningful when the two
/// profiles share the same mean speed (Theorem 5's hypothesis).
pub fn predict_by_variance<T: Num>(p1: &[T], p2: &[T]) -> Ordering {
    let v1 = moments::variance(p1);
    let v2 = moments::variance(p2);
    if v1 > v2 {
        Ordering::Greater
    } else if v1 < v2 {
        Ordering::Less
    } else {
        Ordering::Equal
    }
}

/// The naive mean-speed predictor: the cluster with the *smaller* mean
/// ρ (faster on average) is predicted more powerful. §4's opening example
/// (⟨0.99, 0.02⟩ vs ⟨0.5, 0.5⟩) demonstrates this predictor is invalid.
pub fn predict_by_mean<T: Num>(p1: &[T], p2: &[T]) -> Ordering {
    let m1 = moments::mean(p1);
    let m2 = moments::mean(p2);
    // Smaller mean → faster → predicted Greater power.
    if m1 < m2 {
        Ordering::Greater
    } else if m1 > m2 {
        Ordering::Less
    } else {
        Ordering::Equal
    }
}

/// Higher-moment predictor (companion-paper extension): for equal mean
/// *and* equal variance, bet on larger (more positive) skewness — mass
/// pushed toward small ρ (fast computers) with a slow tail.
pub fn predict_by_skewness(p1: &[f64], p2: &[f64]) -> Ordering {
    let s1 = moments::skewness(p1);
    let s2 = moments::skewness(p2);
    s1.total_cmp(&s2)
}

/// Theorem 5(1) as a checkable implication: if `p1` and `p2` share a mean
/// and `p1` Prop-3-dominates, then `VAR(p1) > VAR(p2)`. Returns `true`
/// when the implication's conclusion holds (or its hypothesis fails).
pub fn theorem5_implication_holds<T: Num>(p1: &[T], p2: &[T]) -> bool {
    if moments::mean(p1) != moments::mean(p2) || !prop3_dominates(p1, p2) {
        return true; // hypothesis not met — implication vacuously true
    }
    moments::variance(p1) > moments::variance(p2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_exact::Ratio;

    fn r(n: i64, d: u64) -> Ratio {
        Ratio::from_frac(n, d)
    }

    #[test]
    fn minorizing_profile_dominates() {
        // Strictly smaller ρ everywhere ⇒ all F_k smaller ⇒ dominance.
        let fast = [r(1, 2), r(1, 4)];
        let slow = [r(1, 1), r(1, 2)];
        assert!(prop3_dominates(&fast, &slow));
        assert!(!prop3_dominates(&slow, &fast));
    }

    #[test]
    fn equal_profiles_do_not_dominate() {
        let p = [r(1, 1), r(1, 2)];
        assert!(!prop3_dominates(&p, &p), "no strict inequality anywhere");
    }

    #[test]
    fn theorem5_biconditional_for_n2() {
        // n = 2, equal means: larger variance ⇔ dominance (Theorem 5(2)).
        // ⟨1, 1/2⟩ (var 1/16) vs ⟨3/4, 3/4⟩ (var 0), both mean 3/4.
        let hetero = [r(1, 1), r(1, 2)];
        let homo = [r(3, 4), r(3, 4)];
        assert_eq!(moments::mean(&hetero), moments::mean(&homo));
        assert!(moments::variance(&hetero) > moments::variance(&homo));
        assert!(
            prop3_dominates(&hetero, &homo),
            "Corollary 1: heterogeneity lends power"
        );
        assert!(!prop3_dominates(&homo, &hetero));
    }

    #[test]
    fn n2_variance_order_matches_dominance_on_a_family() {
        // Sweep spread d: ⟨m+d, m−d⟩ vs ⟨m+d', m−d'⟩ with d > d' always
        // dominates (n = 2 biconditional).
        let m = r(1, 2);
        for (dn, dd, en, ed) in [(1i64, 4u64, 1i64, 8u64), (3, 8, 1, 4), (1, 8, 1, 16)] {
            let d = r(dn, dd);
            let e = r(en, ed);
            let wide = [&m + &d, &m - &d];
            let tight = [&m + &e, &m - &e];
            assert!(prop3_dominates(&wide, &tight), "d={dn}/{dd} e={en}/{ed}");
            assert_eq!(predict_by_variance(&wide, &tight), Ordering::Greater);
        }
    }

    #[test]
    fn dominance_is_sufficient_not_necessary() {
        // ⟨0.99, 0.02⟩ beats ⟨0.5, 0.5⟩ in X (verified in hetero-core),
        // but F_1 is larger (1.01 > 1.0), so i = 0, j = 1 fails and
        // Prop. 3 abstains. Sufficiency means abstention, not error.
        let hetero = [r(99, 100), r(2, 100)];
        let homo = [r(1, 2), r(1, 2)];
        assert!(!prop3_dominates(&hetero, &homo));
        assert!(!prop3_dominates(&homo, &hetero));
    }

    #[test]
    fn mean_predictor_gets_section4_example_wrong() {
        // The hetero cluster has the worse mean yet (per hetero-core
        // tests) the greater power — the mean predictor picks the loser.
        let hetero = [0.99f64, 0.02];
        let homo = [0.5f64, 0.5];
        assert_eq!(predict_by_mean(&hetero, &homo), Ordering::Less);
    }

    #[test]
    fn variance_predictor_orders() {
        assert_eq!(
            predict_by_variance(&[1.0f64, 0.0], &[0.6, 0.4]),
            Ordering::Greater
        );
        assert_eq!(
            predict_by_variance(&[0.5f64, 0.5], &[1.0, 0.0]),
            Ordering::Less
        );
        assert_eq!(
            predict_by_variance(&[1.0f64, 0.0], &[1.0, 0.0]),
            Ordering::Equal
        );
    }

    #[test]
    fn skewness_predictor_orders() {
        let fast_heavy = [1.0f64, 0.2, 0.2, 0.2]; // long slow tail → positive skew
        let slow_heavy = [1.0f64, 1.0, 1.0, 0.2];
        assert_eq!(
            predict_by_skewness(&fast_heavy, &slow_heavy),
            Ordering::Greater
        );
    }

    #[test]
    fn theorem5_implication_on_examples() {
        let hetero = [r(1, 1), r(1, 2)];
        let homo = [r(3, 4), r(3, 4)];
        assert!(theorem5_implication_holds(&hetero, &homo));
        // Vacuous cases: unequal means.
        let a = [r(1, 1), r(1, 2)];
        let b = [r(1, 2), r(1, 4)];
        assert!(theorem5_implication_holds(&a, &b));
    }

    #[test]
    #[should_panic(expected = "equal-size")]
    fn size_mismatch_panics() {
        let _ = prop3_dominates(&[r(1, 1)], &[r(1, 1), r(1, 2)]);
    }
}
