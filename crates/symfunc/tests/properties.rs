//! Cross-crate property tests: the §4 predictor theory checked against
//! exact X-value comparisons on random clusters.

use std::cmp::Ordering;

use hetero_core::{Params, Profile};
use hetero_exact::Ratio;
use hetero_symfunc::elementary::{elementary_all, elementary_all_dc, power_sums};
use hetero_symfunc::exact_model::{compare_power, x_exact, ExactParams};
use hetero_symfunc::lemma1::{x_via_lemma1, FieldParams};
use hetero_symfunc::moments;
use hetero_symfunc::predictors;
use proptest::prelude::*;

/// Random small-denominator rational speeds in (0, 1].
fn rho_strategy() -> impl Strategy<Value = Ratio> {
    (1u64..=64).prop_map(|d| Ratio::from_frac(1, d))
}

fn profile_strategy(max_n: usize) -> impl Strategy<Value = Vec<Ratio>> {
    prop::collection::vec(rho_strategy(), 1..=max_n)
}

fn exact_params() -> ExactParams {
    ExactParams::from_params(&Params::paper_table1())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop3_is_never_wrong(p1 in profile_strategy(6), mut p2 in profile_strategy(6)) {
        // Pad to equal sizes.
        while p2.len() < p1.len() { p2.push(Ratio::one()); }
        let p1_full = {
            let mut v = p1.clone();
            while v.len() < p2.len() { v.push(Ratio::one()); }
            v
        };
        let ep = exact_params();
        if predictors::prop3_dominates(&p1_full, &p2) {
            // Soundness: a dominance certificate must match exact X order.
            prop_assert_eq!(compare_power(&ep, &p1_full, &p2), Ordering::Greater);
        }
    }

    #[test]
    fn theorem5_n2_biconditional(a in 1u64..=40, b in 1u64..=40, c in 1u64..=40, d in 1u64..=40) {
        // Build two 2-computer clusters with the same mean by construction:
        // P1 = ⟨m+x, m−x⟩, P2 = ⟨m+y, m−y⟩ around m = (a+b+c+d)/…; simpler:
        // force equal sums.
        let p1 = vec![Ratio::from_frac(1, a), Ratio::from_frac(1, b)];
        let sum1 = &p1[0] + &p1[1];
        // P2 = ⟨sum1/2 + e, sum1/2 − e⟩ with e < sum1/2.
        let half = &sum1 / &Ratio::from_int(2);
        let e = &half * &Ratio::new(
            hetero_exact::BigInt::from(i64::try_from(c.min(d)).unwrap()),
            hetero_exact::BigUint::from(c.max(d).max(1) + c.min(d)),
        );
        let p2 = vec![&half + &e, &half - &e];
        prop_assume!(p2[1].is_positive());
        prop_assert_eq!(moments::mean(&p1), moments::mean(&p2));

        let ep = exact_params();
        let v1 = moments::variance(&p1);
        let v2 = moments::variance(&p2);
        let power = compare_power(&ep, &p1, &p2);
        // Theorem 5(2): for n = 2 with equal means, larger variance ⇔
        // strictly more powerful.
        match v1.cmp(&v2) {
            Ordering::Greater => prop_assert_eq!(power, Ordering::Greater),
            Ordering::Less => prop_assert_eq!(power, Ordering::Less),
            Ordering::Equal => prop_assert_eq!(power, Ordering::Equal),
        }
    }

    #[test]
    fn lemma1_identity_on_random_profiles(rhos in profile_strategy(7)) {
        let ep = exact_params();
        let fp = FieldParams::from_exact(&ep);
        prop_assert_eq!(x_via_lemma1(&fp, &rhos), x_exact(&ep, &rhos));
    }

    #[test]
    fn elementary_dp_equals_dc(rhos in profile_strategy(10)) {
        prop_assert_eq!(elementary_all(&rhos), elementary_all_dc(&rhos));
    }

    #[test]
    fn elementary_adding_a_value(rhos in profile_strategy(8), v in rho_strategy()) {
        // e'_k = e_k + v·e_{k−1} when a value joins the multiset.
        let base = elementary_all(&rhos);
        let mut bigger_input = rhos.clone();
        bigger_input.push(v.clone());
        let bigger = elementary_all(&bigger_input);
        for k in 1..bigger.len() {
            let expect = if k < base.len() {
                &base[k] + &(&v * &base[k - 1])
            } else {
                &v * &base[k - 1]
            };
            prop_assert_eq!(bigger[k].clone(), expect);
        }
    }

    #[test]
    fn eq7_eq8_hold_exactly(rhos in profile_strategy(8)) {
        let n = Ratio::from_int(rhos.len() as i64);
        let p = power_sums(&rhos, 2);
        let e = elementary_all(&rhos);
        // Eq. 7: VAR = p2/n − (F1/n)².
        let mean = &p[1] / &n;
        let var_via = &p[2] / &n - &(&mean * &mean);
        prop_assert_eq!(moments::variance(&rhos), var_via);
        // Eq. 8: F2 = (F1² − p2)/2 (only defined for n ≥ 2).
        if rhos.len() >= 2 {
            let f2_via = (&p[1] * &p[1] - &p[2]) / Ratio::from_int(2);
            prop_assert_eq!(e[2].clone(), f2_via);
        }
    }

    #[test]
    fn minorization_always_certified_by_prop3(rhos in profile_strategy(6), scale_den in 2u64..=10) {
        // Scaling every speed down is a minorization; Prop. 3 must
        // certify it (all F_k shrink by consistent powers).
        let scale = Ratio::from_frac((scale_den - 1) as i64, scale_den);
        let faster: Vec<Ratio> = rhos.iter().map(|r| r * &scale).collect();
        prop_assert!(predictors::prop3_dominates(&faster, &rhos));
    }

    #[test]
    fn x_exact_matches_f64_within_tolerance(rhos_f in prop::collection::vec(0.01f64..=1.0, 1..12)) {
        let profile = Profile::from_unsorted(rhos_f).unwrap();
        let fp = Params::paper_table1();
        let ep = ExactParams::from_params(&fp);
        let rhos: Vec<Ratio> = profile.rhos().iter()
            .map(|&r| Ratio::from_f64(r).unwrap())
            .collect();
        let exact = x_exact(&ep, &rhos).to_f64();
        let float = hetero_core::xmeasure::x_measure(&fp, &profile);
        prop_assert!((exact - float).abs() / exact < 1e-11, "{exact} vs {float}");
    }
}
