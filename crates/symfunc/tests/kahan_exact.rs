//! Property tests pitting the Neumaier-compensated `kahan_sum` against
//! the exact rational oracle on adversarial magnitude-spread inputs.
//!
//! Every finite `f64` is a dyadic rational, so `Σ Ratio::from_f64(x_i)`
//! is the mathematically exact sum. Neumaier summation guarantees
//! `|computed − exact| ≤ c·ε·Σ|x_i|` with a small constant `c`
//! independent of `n` and of the ordering — which is precisely what the
//! naive left fold loses when terms span many orders of magnitude.

use hetero_core::numeric::kahan_sum;
use hetero_exact::Ratio;
use proptest::prelude::*;

/// A term with mantissa in ±[1, 2) and exponent spread over ~26 orders of
/// magnitude — the adversarial regime where naive summation decays.
fn spread_term() -> impl Strategy<Value = f64> {
    (1.0f64..2.0, -44i32..44, any::<bool>()).prop_map(|(m, e, neg)| {
        let v = m * (e as f64).exp2();
        if neg {
            -v
        } else {
            v
        }
    })
}

fn exact_sum(values: &[f64]) -> Ratio {
    values.iter().fold(Ratio::zero(), |acc, &v| {
        acc + Ratio::from_f64(v).expect("strategy yields finite values")
    })
}

proptest! {
    #[test]
    fn kahan_is_within_one_ulp_of_the_exact_sum(
        values in proptest::collection::vec(spread_term(), 1..200),
    ) {
        let computed = kahan_sum(values.iter().copied());
        let exact = exact_sum(&values);
        let err = (Ratio::from_f64(computed).expect("finite") - &exact).abs().to_f64();
        // Neumaier bound: error ≲ 2ε·Σ|x_i| (ε = 2⁻⁵³), independent of n.
        let abs_sum: f64 = values.iter().map(|v| v.abs()).sum();
        let bound = 4.0 * f64::EPSILON * abs_sum + f64::MIN_POSITIVE;
        prop_assert!(
            err <= bound,
            "err {err:e} exceeds Neumaier bound {bound:e} on {} terms",
            values.len()
        );
    }

    #[test]
    fn kahan_never_loses_to_naive_by_more_than_the_bound(
        values in proptest::collection::vec(spread_term(), 2..120),
    ) {
        // The compensated error bound must hold even when the naive fold
        // is (coincidentally) exact, and the compensated sum must stay at
        // least as close to the exact value up to one rounding.
        let exact = exact_sum(&values);
        let kahan = Ratio::from_f64(kahan_sum(values.iter().copied())).expect("finite");
        let naive = Ratio::from_f64(values.iter().fold(0.0f64, |a, &b| a + b))
            .expect("finite");
        let kahan_err = (&kahan - &exact).abs();
        let naive_err = (&naive - &exact).abs();
        let abs_sum: f64 = values.iter().map(|v| v.abs()).sum();
        let slack = Ratio::from_f64(4.0 * f64::EPSILON * abs_sum + f64::MIN_POSITIVE)
            .expect("finite");
        prop_assert!(
            kahan_err <= &naive_err + &slack,
            "compensation made things worse beyond one rounding"
        );
    }

    #[test]
    fn cancelling_pairs_leave_the_small_terms_intact(
        small in proptest::collection::vec(-1.0f64..1.0, 1..50),
        big_exp in 30i32..60,
    ) {
        // Inject a huge exactly-cancelling pair: the compensated sum of
        // the augmented sequence must equal the compensated sum of the
        // small terms to within the Neumaier bound of the *small* terms.
        let big = (big_exp as f64).exp2();
        let mut augmented = Vec::with_capacity(small.len() + 2);
        augmented.push(big);
        augmented.extend(small.iter().copied());
        augmented.push(-big);
        let with_pair = kahan_sum(augmented.iter().copied());
        let exact = exact_sum(&small);
        let err = (Ratio::from_f64(with_pair).expect("finite") - &exact).abs().to_f64();
        let abs_sum: f64 = small.iter().map(|v| v.abs()).sum::<f64>() + 2.0 * big;
        let bound = 4.0 * f64::EPSILON * abs_sum + f64::MIN_POSITIVE;
        prop_assert!(err <= bound, "err {err:e} vs bound {bound:e}");
    }
}

#[test]
fn ratio_oracle_agrees_on_a_known_case() {
    // Pin the oracle itself: 1e16 + 1 − 1e16 is exactly 1, and the naive
    // fold provably returns 0 (1 is absorbed), so the property tests
    // above are exercising a real difference.
    let values = [1e16, 1.0, -1e16];
    assert_eq!(kahan_sum(values), 1.0);
    assert_eq!(values.iter().fold(0.0, |a, &b| a + b), 0.0);
    assert_eq!(exact_sum(&values).to_f64(), 1.0);
}
